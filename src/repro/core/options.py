"""Immutable compiler configuration.

One frozen :class:`CompilerOptions` value configures a whole
:class:`~repro.core.controller.SnapController` session.  Freezing it is
deliberate: a long-lived controller answers a stream of events, and the
answer to "what settings produced snapshot N?" must not change when the
caller later tweaks a knob.  To recompile with different settings, start
a new session (or pass a ``dataclasses.replace``-d options value).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompilerOptions:
    """Settings shared by every compilation a session performs.

    ``solver`` names a registered :mod:`repro.milp.backends` backend
    (``"milp"`` — the §4.4 ST MILP — or ``"greedy"``, the §6.2.2
    heuristic), or is itself a backend instance for callers plugging in
    their own solver.

    ``engine`` selects how the session's live data plane executes
    workloads: ``"sequential"`` (run-to-completion in arrival order),
    ``"sharded"`` (per-ingress state shards on parallel thread lanes),
    ``"process"`` (the same shards on a pool of worker processes — one
    session-owned pool that survives TE hot swaps, see
    :mod:`repro.dataplane.engine`), ``"cluster"`` (the same shards on
    socket-connected worker daemons, local subprocesses or remote
    hosts, see :mod:`repro.cluster`), ``"vector"`` / ``"vector-jit"``
    (the columnar NumPy batch tier inside each lane, interpreted or as
    generated per-program kernels, see :mod:`repro.dataplane.vector`),
    any other name added through
    :func:`repro.dataplane.engine.register_engine`, or an engine
    instance.
    """

    solver: object = "milp"
    solver_time_limit: float | None = None
    mip_rel_gap: float | None = None
    validate: bool = True
    stateful_switches: tuple | None = None
    #: Data-plane execution engine for ``SnapController.network()``: a
    #: registered name (``"sequential"`` | ``"sharded"`` | ``"process"``
    #: | ``"cluster"`` | ``"vector"`` | ``"vector-jit"`` | ...) or an
    #: engine instance.
    engine: object = "sequential"
    #: Whether parallel engines may lift collapse-causing mergeable
    #: state variables onto per-lane replicas with deterministic merge
    #: (:mod:`repro.dataplane.replication`).  On by default: replication
    #: only ever applies where the effect analyzer proves the merged
    #: stores byte-identical to sequential execution; set ``False`` to
    #: force every unshardable variable back onto its serialized owner
    #: lane.
    replicate_state: bool = True
    #: Whether the session keeps its compilation caches across
    #: generations: the hash-consing factory and apply-cache, the
    #: fingerprint-keyed sub-xFDD memo (subtree splicing), the
    #: dependency slicer, the path-summary memo, and the content-keyed
    #: ST-solve memo.  On by default — results are identical to a cold
    #: compile (the equivalence property in the test suite asserts it);
    #: set ``False`` to force every ``update_policy`` down the from-
    #: scratch path (``update_policy(..., incremental=False)`` does the
    #: same for a single event).
    incremental: bool = True
    #: How many snapshots ``SnapController.history()`` retains (oldest
    #: evicted first; ``current`` is always kept).  Each snapshot pins
    #: its xFDD and hash-consing factory, so an unbounded history would
    #: grow a long-lived session's memory linearly with event count.
    #: ``None`` retains everything.
    history_limit: int | None = 16
    #: Telemetry for this session: ``None`` (leave the process-wide
    #: configuration alone — i.e. the ``SNAP_TELEMETRY*`` environment
    #: defaults), a bool or ``"on"``/``"off"``, or a full
    #: :class:`repro.obs.TelemetryConfig`.  Anything non-``None`` is
    #: applied process-wide when the controller starts.
    telemetry: object = None

    def __post_init__(self):
        if self.telemetry is not None:
            from repro.obs import resolve_config

            # Validate eagerly (and normalize strings/bools) so a typo
            # fails at options construction, not mid-compile.
            object.__setattr__(
                self, "telemetry", resolve_config(self.telemetry)
            )
        if self.stateful_switches is not None and not isinstance(
            self.stateful_switches, tuple
        ):
            object.__setattr__(
                self, "stateful_switches", tuple(self.stateful_switches)
            )
        if isinstance(self.engine, str):
            from repro.dataplane.engine import engine_names

            if self.engine not in engine_names():
                raise ValueError(
                    f"engine must be one of {engine_names()} or an engine "
                    f"instance, got {self.engine!r}"
                )
