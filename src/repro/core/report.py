"""Human-readable compilation reports.

§4.5/§5: the compiler's output per switch is a NetASM program plus
match-action routing rules.  :func:`compilation_report` summarizes what
was installed where — useful for examples, docs, and operators sanity-
checking a deployment.
"""

from __future__ import annotations

from repro.core.result import Snapshot
from repro.dataplane.network import Network
from repro.xfdd.diagram import size


def compilation_report(result: Snapshot, network: Network | None = None) -> str:
    """A multi-line summary of one compilation snapshot."""
    lines = []
    lines.append(f"program:   {result.program.name}")
    lines.append(f"topology:  {result.topology.name} "
                 f"({result.topology.num_switches()} switches, "
                 f"{len(result.topology.ports)} OBS ports)")
    lines.append(f"scenario:  {result.scenario} "
                 f"(generation {result.generation}, event {result.event})")
    lines.append(f"xFDD size: {size(result.xfdd)}")
    lines.append(f"objective: {result.objective:.4f} (sum of link utilization)")
    lines.append("state placement:")
    by_switch: dict = {}
    for var, switch in sorted(result.placement.items()):
        by_switch.setdefault(switch, []).append(var)
    for switch, vars_ in sorted(by_switch.items()):
        lines.append(f"  {switch}: {', '.join(vars_)}")
    if result.dependencies.tied:
        groups = ", ".join(
            "{" + ", ".join(sorted(t)) + "}" for t in sorted(
                result.dependencies.tied, key=sorted
            )
        )
        lines.append(f"co-located groups: {groups}")
    lines.append("phase timings:")
    for phase in ("P1", "P2", "P3", "P4", "P5", "P6"):
        if phase in result.timer.durations:
            lines.append(f"  {phase}: {result.timer.durations[phase] * 1000:9.2f} ms")
    if network is not None:
        lines.append("per-switch data plane:")
        rule_counts = network.rules.rule_counts()
        instr_counts = network.instruction_counts()
        for switch in sorted(network.switches):
            rules = rule_counts.get(switch, 0)
            instrs = instr_counts.get(switch, 0)
            entries = len(network.switches[switch].entries)
            lines.append(
                f"  {switch}: {rules} routing rules, {instrs} NetASM "
                f"instructions, {entries} xFDD entry points"
            )
    return "\n".join(lines)
