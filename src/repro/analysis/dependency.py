"""State dependency analysis (§4.1, Appendix B Figure 14).

``st-dep`` collects ordering constraints between state variables::

    st-dep(p + q)             = st-dep(p) ∪ st-dep(q)
    st-dep(p ; q)             = (r(p) × w(q)) ∪ st-dep(p) ∪ st-dep(q)
    st-dep(if a then p else q)= (r(a) × (w(p) ∪ w(q)))
                                ∪ st-dep(p) ∪ st-dep(q)
    st-dep(atomic(p))         = (r(p) ∪ w(p)) × (r(p) ∪ w(p))
    st-dep(p)                 = ∅ otherwise

An edge ``s -> t`` means "t is written after s is read": any realization
must route packets through s's switch before t's.  The graph's SCC
condensation yields (i) the total state-variable order used by the xFDD
(§4.2), (ii) the ``tied`` co-location pairs, and (iii) the ``dep`` ordering
pairs consumed by the MILP (§4.4).
"""

from __future__ import annotations

import networkx as nx

from repro.lang import ast
from repro.lang.ast import state_reads, state_variables, state_writes


def st_dep(policy: ast.Policy) -> frozenset:
    """The set of dependency edges ``(s, t)`` — t depends on s."""
    if isinstance(policy, ast.Parallel):
        return st_dep(policy.left) | st_dep(policy.right)
    if isinstance(policy, ast.Seq):
        crossed = {
            (s, t)
            for s in state_reads(policy.left)
            for t in state_writes(policy.right)
        }
        return frozenset(crossed) | st_dep(policy.left) | st_dep(policy.right)
    if isinstance(policy, ast.If):
        written = state_writes(policy.then) | state_writes(policy.orelse)
        crossed = {(s, t) for s in state_reads(policy.pred) for t in written}
        return frozenset(crossed) | st_dep(policy.then) | st_dep(policy.orelse)
    if isinstance(policy, ast.Atomic):
        touched = state_variables(policy.body)
        return frozenset((s, t) for s in touched for t in touched) | st_dep(policy.body)
    if isinstance(policy, (ast.And, ast.Or)):
        return st_dep(policy.left) | st_dep(policy.right)
    if isinstance(policy, ast.Not):
        return st_dep(policy.pred)
    return frozenset()


class DependencyInfo:
    """Results of the dependency analysis.

    Attributes:
        graph:      the raw dependency digraph (networkx DiGraph).
        state_rank: variable -> SCC rank in topological order; drives the
                    xFDD state-test order.
        order:      all state variables sorted by (rank, name).
        tied:       frozenset of frozensets — variables that must be
                    co-located (same SCC, §4.4).
        dep:        frozenset of (s, t) pairs — s's switch must precede
                    t's on any flow needing both (cross-SCC edges).
    """

    def __init__(self, graph: nx.DiGraph):
        self.graph = graph
        sccs = list(nx.strongly_connected_components(graph))
        condensation = nx.condensation(graph, scc=sccs)
        self.state_rank: dict[str, int] = {}
        for rank, scc_index in enumerate(nx.topological_sort(condensation)):
            for var in condensation.nodes[scc_index]["members"]:
                self.state_rank[var] = rank
        self.order = sorted(self.state_rank, key=lambda v: (self.state_rank[v], v))
        tied = set()
        for scc in sccs:
            if len(scc) > 1:
                members = sorted(scc)
                for i, a in enumerate(members):
                    for b in members[i + 1 :]:
                        tied.add(frozenset((a, b)))
        self.tied = frozenset(tied)
        dep = set()
        for s, t in graph.edges:
            if s != t and self.state_rank[s] != self.state_rank[t]:
                dep.add((s, t))
        self.dep = frozenset(dep)

    def __repr__(self):
        return (
            f"DependencyInfo(order={self.order}, tied={sorted(map(sorted, self.tied))}, "
            f"dep={sorted(self.dep)})"
        )


def analyze_dependencies(policy: ast.Policy) -> DependencyInfo:
    """Run st-dep and condense the resulting graph."""
    graph = nx.DiGraph()
    graph.add_nodes_from(state_variables(policy))
    graph.add_edges_from(st_dep(policy))
    return DependencyInfo(graph)
