"""State dependency analysis (§4.1, Appendix B Figure 14).

``st-dep`` collects ordering constraints between state variables::

    st-dep(p + q)             = st-dep(p) ∪ st-dep(q)
    st-dep(p ; q)             = (r(p) × w(q)) ∪ st-dep(p) ∪ st-dep(q)
    st-dep(if a then p else q)= (r(a) × (w(p) ∪ w(q)))
                                ∪ st-dep(p) ∪ st-dep(q)
    st-dep(atomic(p))         = (r(p) ∪ w(p)) × (r(p) ∪ w(p))
    st-dep(p)                 = ∅ otherwise

An edge ``s -> t`` means "t is written after s is read": any realization
must route packets through s's switch before t's.  The graph's SCC
condensation yields (i) the total state-variable order used by the xFDD
(§4.2), (ii) the ``tied`` co-location pairs, and (iii) the ``dep`` ordering
pairs consumed by the MILP (§4.4).
"""

from __future__ import annotations

from typing import NamedTuple

import networkx as nx

from repro.lang import ast
from repro.lang.ast import state_reads, state_variables, state_writes
from repro.lang.fingerprint import fingerprint


def st_dep(policy: ast.Policy) -> frozenset:
    """The set of dependency edges ``(s, t)`` — t depends on s."""
    if isinstance(policy, ast.Parallel):
        return st_dep(policy.left) | st_dep(policy.right)
    if isinstance(policy, ast.Seq):
        crossed = {
            (s, t)
            for s in state_reads(policy.left)
            for t in state_writes(policy.right)
        }
        return frozenset(crossed) | st_dep(policy.left) | st_dep(policy.right)
    if isinstance(policy, ast.If):
        written = state_writes(policy.then) | state_writes(policy.orelse)
        crossed = {(s, t) for s in state_reads(policy.pred) for t in written}
        return frozenset(crossed) | st_dep(policy.then) | st_dep(policy.orelse)
    if isinstance(policy, ast.Atomic):
        touched = state_variables(policy.body)
        return frozenset((s, t) for s in touched for t in touched) | st_dep(policy.body)
    if isinstance(policy, (ast.And, ast.Or)):
        return st_dep(policy.left) | st_dep(policy.right)
    if isinstance(policy, ast.Not):
        return st_dep(policy.pred)
    return frozenset()


class DependencySlice(NamedTuple):
    """One subtree's contribution to the dependency analysis."""

    edges: frozenset
    reads: frozenset
    writes: frozenset


_EMPTY_SLICE = DependencySlice(frozenset(), frozenset(), frozenset())

#: Nodes worth memoizing — everything with policy children.
_COMPOSITE = (ast.Not, ast.And, ast.Or, ast.Parallel, ast.Seq, ast.If, ast.Atomic)


class DependencySlicer:
    """Fingerprint-memoized ``st-dep`` slices for incremental compilation.

    ``slice(p)`` returns the same ``(edges, reads, writes)`` triple the
    plain recursion would derive for ``p``, but memoizes every composite
    subtree by its structural fingerprint.  Across ``update_policy``
    generations only the *dirty* subtrees are revisited; retained slices
    merge for free (the recursion unions child results, and unchanged
    children are O(1) lookups).  The memo is pure — slices depend only on
    the subtree's structure — so entries never invalidate; the owning
    session bounds its growth by resetting with the rest of its caches.
    """

    __slots__ = ("_memo",)

    def __init__(self):
        self._memo: dict = {}

    def __len__(self) -> int:
        return len(self._memo)

    def slice(self, policy: ast.Policy) -> DependencySlice:
        if not isinstance(policy, _COMPOSITE):
            if isinstance(policy, ast.StateTest):
                return DependencySlice(
                    frozenset(), frozenset((policy.var,)), frozenset()
                )
            if isinstance(policy, (ast.StateMod, ast.StateIncr, ast.StateDecr)):
                return DependencySlice(
                    frozenset(), frozenset(), frozenset((policy.var,))
                )
            return _EMPTY_SLICE
        key = fingerprint(policy)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        result = self._slice_composite(policy)
        self._memo[key] = result
        return result

    def _slice_composite(self, policy) -> DependencySlice:
        # Mirrors st_dep exactly; reads/writes mirror state_reads/-writes.
        if isinstance(policy, ast.Not):
            return self.slice(policy.pred)
        if isinstance(policy, (ast.And, ast.Or, ast.Parallel)):
            left, right = self.slice(policy.left), self.slice(policy.right)
            return DependencySlice(
                left.edges | right.edges,
                left.reads | right.reads,
                left.writes | right.writes,
            )
        if isinstance(policy, ast.Seq):
            left, right = self.slice(policy.left), self.slice(policy.right)
            crossed = frozenset(
                (s, t) for s in left.reads for t in right.writes
            )
            return DependencySlice(
                crossed | left.edges | right.edges,
                left.reads | right.reads,
                left.writes | right.writes,
            )
        if isinstance(policy, ast.If):
            pred = self.slice(policy.pred)
            then = self.slice(policy.then)
            orelse = self.slice(policy.orelse)
            written = then.writes | orelse.writes
            crossed = frozenset((s, t) for s in pred.reads for t in written)
            return DependencySlice(
                crossed | then.edges | orelse.edges,
                pred.reads | then.reads | orelse.reads,
                written,
            )
        # Atomic: full cross product over everything the body touches.
        body = self.slice(policy.body)
        touched = body.reads | body.writes
        crossed = frozenset((s, t) for s in touched for t in touched)
        return DependencySlice(crossed | body.edges, body.reads, body.writes)


class DependencyInfo:
    """Results of the dependency analysis.

    Attributes:
        graph:      the raw dependency digraph (networkx DiGraph).
        state_rank: variable -> SCC rank in topological order; drives the
                    xFDD state-test order.
        order:      all state variables sorted by (rank, name).
        tied:       frozenset of frozensets — variables that must be
                    co-located (same SCC, §4.4).
        dep:        frozenset of (s, t) pairs — s's switch must precede
                    t's on any flow needing both (cross-SCC edges).
    """

    def __init__(self, graph: nx.DiGraph):
        self.graph = graph
        sccs = list(nx.strongly_connected_components(graph))
        condensation = nx.condensation(graph, scc=sccs)
        self.state_rank: dict[str, int] = {}
        for rank, scc_index in enumerate(nx.topological_sort(condensation)):
            for var in condensation.nodes[scc_index]["members"]:
                self.state_rank[var] = rank
        self.order = sorted(self.state_rank, key=lambda v: (self.state_rank[v], v))
        tied = set()
        for scc in sccs:
            if len(scc) > 1:
                members = sorted(scc)
                for i, a in enumerate(members):
                    for b in members[i + 1 :]:
                        tied.add(frozenset((a, b)))
        self.tied = frozenset(tied)
        dep = set()
        for s, t in graph.edges:
            if s != t and self.state_rank[s] != self.state_rank[t]:
                dep.add((s, t))
        self.dep = frozenset(dep)

    def __repr__(self):
        return (
            f"DependencyInfo(order={self.order}, tied={sorted(map(sorted, self.tied))}, "
            f"dep={sorted(self.dep)})"
        )


def analyze_dependencies(
    policy: ast.Policy, slicer: DependencySlicer | None = None
) -> DependencyInfo:
    """Run st-dep and condense the resulting graph.

    With a ``slicer`` the edge set comes from fingerprint-memoized
    per-subtree slices (same result, but unchanged subtrees across
    recompilations are O(1) lookups instead of re-walks).
    """
    graph = nx.DiGraph()
    if slicer is not None:
        sliced = slicer.slice(policy)
        graph.add_nodes_from(sliced.reads | sliced.writes)
        graph.add_edges_from(sliced.edges)
    else:
        graph.add_nodes_from(state_variables(policy))
        graph.add_edges_from(st_dep(policy))
    return DependencyInfo(graph)
