"""Policy / xFDD lint: diagnostics over what the compiler proves.

Run as a CLI::

    python -m repro.analysis.lint stateful-firewall dns-tunnel-detect
    python -m repro.analysis.lint --all --format=json
    python -m repro.analysis.lint examples/quickstart.py

Targets are Table-3 application names (``repro.apps.ALL_APPS``), example
module paths, or bare example names resolved against ``examples/``.
Example modules must expose a zero-argument ``programs()`` returning the
:class:`~repro.core.program.Program` objects to lint.

Diagnostic code catalogue (stable; see ``docs/analysis.md``):

========== ======= ====================================================
code       level   meaning
========== ======= ====================================================
SNAP-E001  error   order-dependent ``Parallel`` write/write race
SNAP-E002  error   policy fails xFDD composition
SNAP-W101  warning benign commutative ``Parallel`` write/write overlap
SNAP-W102  warning ``Parallel`` read/write overlap (reads see pre-state)
SNAP-W103  warning non-atomic multi-variable update chain (transaction
                   hazard under concurrent in-flight packets)
SNAP-W104  warning state variable forces single-owner-lane collapse
                   (emitted by the shard planner, not this CLI)
SNAP-W201  warning unreachable xFDD branch arm (test determined by
                   ancestors on the same field)
SNAP-W301  warning state variable written but never tested
SNAP-W302  warning state variable tested but never written
SNAP-I401  info    ``Parallel`` arms with mutually unsatisfiable
                   assumptions (at most one arm ever applies)
SNAP-I402  info    collapse-causing variable replicated at runtime —
                   per-lane replicas with deterministic merge lift the
                   SNAP-W104 collapse, so no remedy remains (emitted by
                   the replica planner, :mod:`repro.dataplane
                   .replication`, not this CLI)
========== ======= ====================================================

Exit status: 1 if any error-level finding was emitted (suppressed by
``--warn-only``), else 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.effects import analyze_effects
from repro.lang import ast
from repro.lang.errors import CompileError, RaceConditionError
from repro.lang.values import matches
from repro.util.ipaddr import IPPrefix
from repro.xfdd.tests import FieldValueTest


@dataclass(frozen=True)
class LintFinding:
    code: str
    level: str  #: ``"error"`` | ``"warning"`` | ``"info"``
    message: str
    variable: str | None = None

    def to_dict(self) -> dict:
        out = {"code": self.code, "level": self.level, "message": self.message}
        if self.variable is not None:
            out["variable"] = self.variable
        return out


_LEVELS = {"E": "error", "W": "warning", "I": "info"}


def _finding(code: str, message: str, variable: str | None = None):
    return LintFinding(
        code=code, level=_LEVELS[code[5]], message=message, variable=variable
    )


# -- AST-level checks ---------------------------------------------------------


def _effect_findings(report) -> list:
    findings = []
    for race in report.races + report.hazards:
        findings.append(_finding(
            race.code,
            f"{race.message} [{race.site_a} | {race.site_b}]",
            variable=race.variable,
        ))
    for var, effect in sorted(report.variables.items()):
        if effect.sites and not effect.read_sites:
            findings.append(_finding(
                "SNAP-W301",
                f"state variable '{var}' is written but never tested "
                f"({effect.kind.value}); it only feeds external observers",
                variable=var,
            ))
        elif effect.read_sites and not effect.sites:
            findings.append(_finding(
                "SNAP-W302",
                f"state variable '{var}' is tested but never written; "
                "every test sees its initial value",
                variable=var,
            ))
    return findings


def _conjuncts(pred) -> list:
    """``(field, value, polarity)`` facts a predicate certainly implies."""
    if isinstance(pred, ast.Test):
        return [(pred.field, pred.value, True)]
    if isinstance(pred, ast.Not) and isinstance(pred.pred, ast.Test):
        return [(pred.pred.field, pred.pred.value, False)]
    if isinstance(pred, ast.And):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return []


def _arm_assumption(arm) -> list:
    """The leading predicate facts of one ``Parallel`` arm, if any."""
    if isinstance(arm, ast.Predicate):
        return _conjuncts(arm)
    if isinstance(arm, ast.Seq) and isinstance(arm.left, ast.Predicate):
        return _conjuncts(arm.left)
    if isinstance(arm, ast.If) and isinstance(arm.orelse, ast.Drop):
        return _conjuncts(arm.pred)
    return []


def _values_disjoint(a, b) -> bool:
    if a == b:
        return False
    if isinstance(a, IPPrefix) and isinstance(b, IPPrefix):
        return not a.overlaps(b)
    if isinstance(a, IPPrefix) or isinstance(b, IPPrefix):
        packet_value, test_value = (b, a) if isinstance(a, IPPrefix) else (a, b)
        try:
            return not matches(packet_value, test_value)
        except Exception:
            return False
    return True  # distinct plain literals on one field cannot both hold


def _mutually_unsat(facts_a: list, facts_b: list) -> bool:
    for field_a, value_a, polarity_a in facts_a:
        for field_b, value_b, polarity_b in facts_b:
            if field_a != field_b:
                continue
            if polarity_a and polarity_b and _values_disjoint(value_a, value_b):
                return True
            if polarity_a != polarity_b and value_a == value_b:
                return True
    return False


def _unsat_parallel_findings(policy) -> list:
    findings = []
    stack = [policy]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Parallel):
            facts_left = _arm_assumption(node.left)
            facts_right = _arm_assumption(node.right)
            if facts_left and facts_right and _mutually_unsat(
                facts_left, facts_right
            ):
                findings.append(_finding(
                    "SNAP-I401",
                    "Parallel arms have mutually unsatisfiable assumptions: "
                    "at most one arm ever applies per packet, so the "
                    "composition is a disjoint union (an if-else would say "
                    "the same thing)",
                ))
            stack.extend((node.left, node.right))
        elif isinstance(node, (ast.Seq,)):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.If):
            stack.extend((node.then, node.orelse))
        elif isinstance(node, ast.Atomic):
            stack.append(node.body)
    return findings


# -- xFDD-level checks --------------------------------------------------------

#: Path-sensitive walks on a hash-consed DAG can revisit nodes once per
#: path; cap the visit budget so lint stays cheap on adversarial inputs.
_WALK_BUDGET = 50_000


def _implied(test, exact: dict, known: dict, excluded: dict):
    """The branch outcome its ancestors force, or None."""
    if test in exact:
        return exact[test]
    if isinstance(test, FieldValueTest):
        known_value = known.get(test.field)
        if known_value is not None:
            try:
                return matches(known_value, test.value)
            except Exception:
                return None
        if test.value in excluded.get(test.field, ()):
            return False
    return None


def _unreachable_findings(root) -> list:
    from repro.xfdd.diagram import Branch

    findings: dict = {}
    budget = _WALK_BUDGET

    def walk(node, exact, known, excluded):
        nonlocal budget
        if not isinstance(node, Branch) or budget <= 0:
            return
        budget -= 1
        test = node.test
        forced = _implied(test, exact, known, excluded)
        if forced is not None:
            key = (test, forced)
            if key not in findings:
                dead = "true" if not forced else "false"
                findings[key] = _finding(
                    "SNAP-W201",
                    f"branch test '{test}' is already {forced} on this "
                    f"path; its {dead} arm is unreachable",
                )
            walk(node.hi if forced else node.lo, exact, known, excluded)
            return
        hi_exact = dict(exact)
        hi_exact[test] = True
        hi_known, hi_excluded = known, excluded
        lo_exact = dict(exact)
        lo_exact[test] = False
        lo_known, lo_excluded = known, excluded
        if isinstance(test, FieldValueTest):
            if not isinstance(test.value, IPPrefix):
                hi_known = dict(known)
                hi_known[test.field] = test.value
                lo_excluded = dict(excluded)
                lo_excluded[test.field] = (
                    excluded.get(test.field, frozenset()) | {test.value}
                )
        walk(node.hi, hi_exact, hi_known, hi_excluded)
        walk(node.lo, lo_exact, lo_known, lo_excluded)

    walk(root, {}, {}, {})
    return list(findings.values())


# -- one program --------------------------------------------------------------


def lint_program(program) -> list:
    """Every lint finding for one :class:`Program`, deterministically
    ordered by (code, message)."""
    policy = program.policy
    report = analyze_effects(policy)
    findings = _effect_findings(report)
    findings.extend(_unsat_parallel_findings(policy))
    try:
        from repro.analysis.dependency import analyze_dependencies
        from repro.xfdd.build import build_xfdd

        deps = analyze_dependencies(program.full_policy())
        xfdd = build_xfdd(
            program.full_policy(),
            registry=program.registry,
            state_rank=deps.state_rank,
        )
    except RaceConditionError as exc:
        findings.append(_finding(
            "SNAP-E001",
            f"xFDD composition found a parallel write/write race: {exc}",
        ))
    except CompileError as exc:
        findings.append(_finding(
            "SNAP-E002", f"policy fails xFDD composition: {exc}"
        ))
    else:
        findings.extend(_unreachable_findings(xfdd))
    findings.sort(key=lambda f: (f.code, f.message))
    return findings


def lint_diagram(root) -> list:
    """The xFDD-only checks, for callers holding a compiled diagram."""
    return sorted(
        _unreachable_findings(root), key=lambda f: (f.code, f.message)
    )


# -- CLI ----------------------------------------------------------------------


def _resolve_target(name: str) -> list:
    """A target name -> list of Programs (app, example path, or stem)."""
    from repro.apps import ALL_APPS

    if name in ALL_APPS:
        return [ALL_APPS[name]()]
    path = Path(name)
    if not path.suffix == ".py":
        candidate = Path("examples") / f"{name}.py"
        if candidate.exists():
            path = candidate
    if path.suffix == ".py" and path.exists():
        return _load_example(path)
    raise SystemExit(
        f"unknown lint target {name!r}: not a Table-3 app name "
        f"({', '.join(sorted(ALL_APPS))}) and no such example module"
    )


def _load_example(path: Path) -> list:
    import importlib.util

    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    builder = getattr(module, "programs", None)
    if builder is None:
        raise SystemExit(
            f"example module {path} has no programs() builder to lint"
        )
    return list(builder())


def _all_targets() -> list:
    from repro.apps import ALL_APPS

    targets = list(ALL_APPS)
    examples_dir = Path("examples")
    if examples_dir.is_dir():
        targets.extend(
            str(p) for p in sorted(examples_dir.glob("*.py"))
        )
    return targets


def run_lint(target_names) -> dict:
    """Lint every target; returns ``{target: [LintFinding]}``."""
    results = {}
    for name in target_names:
        findings = []
        for program in _resolve_target(name):
            findings.extend(lint_program(program))
        findings.sort(key=lambda f: (f.code, f.message))
        results[name] = findings
    return results


def _counts(findings) -> dict:
    counts = {"error": 0, "warning": 0, "info": 0}
    for finding in findings:
        counts[finding.level] += 1
    return counts


def render_json(results: dict) -> str:
    payload = {"targets": {}, "totals": {"error": 0, "warning": 0, "info": 0}}
    for name, findings in results.items():
        counts = _counts(findings)
        codes: dict = {}
        for finding in findings:
            codes[finding.code] = codes.get(finding.code, 0) + 1
        payload["targets"][name] = {
            "findings": [f.to_dict() for f in findings],
            "codes": dict(sorted(codes.items())),
            **counts,
        }
        for level, count in counts.items():
            payload["totals"][level] += count
    return json.dumps(payload, indent=2, default=str)


def render_text(results: dict) -> str:
    lines = []
    totals = {"error": 0, "warning": 0, "info": 0}
    for name, findings in results.items():
        if not findings:
            lines.append(f"{name}: clean")
            continue
        lines.append(f"{name}:")
        for finding in findings:
            lines.append(
                f"  {finding.code} {finding.level}: {finding.message}"
            )
            totals[finding.level] += 1
    lines.append(
        f"{totals['error']} error(s), {totals['warning']} warning(s), "
        f"{totals['info']} info"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Static state-effect and xFDD lint for SNAP policies.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help="Table-3 app names, example module paths, or example stems",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint every Table-3 app and every examples/*.py module",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="always exit 0, even with error-level findings",
    )
    args = parser.parse_args(argv)
    targets = _all_targets() if args.all else args.targets
    if not targets:
        parser.error("no targets given (name apps/examples or pass --all)")
    results = run_lint(targets)
    render = render_json if args.format == "json" else render_text
    print(render(results))
    has_errors = any(
        finding.level == "error"
        for findings in results.values()
        for finding in findings
    )
    return 1 if has_errors and not args.warn_only else 0


if __name__ == "__main__":
    sys.exit(main())
