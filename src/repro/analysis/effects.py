"""Static state-effect analysis: what does each write *do*?

The compiler already proves where state lives (packet-state mapping,
§4.3) and which ingress ports share it (`dataplane/engine.py` shard
planning, §7.3); this module proves what each update does to it.  Every
write site — ``s[e] <- v``, ``s[e]++``, ``s[e]--`` — is classified into
a small effect lattice, then joined per variable:

``CONST_WRITE``
    writes of statically-known literals, more than one distinct value —
    last-writer-wins, order-dependent.
``INCREMENT``
    only ``++``/``--`` deltas — commutative, replica-mergeable by sum.
``MONOTONE``
    equality-guarded literal writes that only move the value in one
    direction (watermark / max-min shape) — replica-mergeable by
    max (or min), but *not* interleaving-independent across variables.
``IDEMPOTENT_INSERT``
    a single distinct literal ever written (set-insert shape) —
    commutative and idempotent.
``GENERAL_RMW``
    everything else (packet-dependent values, mixed delta/assign) — the
    lattice top; no merge strategy short of serialization.

There is deliberately no ``UNKNOWN``: the lattice top is always sound.

Two commutativity tiers fall out of the lattice:

* ``mergeable`` — {INCREMENT, IDEMPOTENT_INSERT, MONOTONE}: per-variable
  replica merge is deterministic (sum / set-union / max).  This is the
  oracle the planned state-compute replication needs (ROADMAP,
  arXiv:2309.14647).
* ``order_independent`` — {INCREMENT, IDEMPOTENT_INSERT}: the final
  store is the same under *any* per-packet interleaving, not merely
  mergeable.  MONOTONE is excluded: two equality-guarded watermark
  chains on different switches can interleave into a joint state no
  serial order produces.

:func:`analyze_effects` additionally cross-references read/write sets
across ``Parallel`` arms (§2 parallel composition races) and across the
``atomic()``-tie partition (§3 network transactions), producing
:class:`RaceFinding`s with stable diagnostic codes — see
``docs/analysis.md`` for the catalogue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.pretty import pretty


class EffectKind(str, enum.Enum):
    """Per-variable update classification (see module docstring)."""

    CONST_WRITE = "CONST_WRITE"
    INCREMENT = "INCREMENT"
    MONOTONE = "MONOTONE"
    IDEMPOTENT_INSERT = "IDEMPOTENT_INSERT"
    GENERAL_RMW = "GENERAL_RMW"

    @property
    def mergeable(self) -> bool:
        """Replicas of this variable converge by deterministic merge."""
        return self in _MERGEABLE

    @property
    def order_independent(self) -> bool:
        """The final value is invariant under any packet interleaving."""
        return self in _ORDER_INDEPENDENT


_MERGEABLE = frozenset((
    EffectKind.INCREMENT, EffectKind.IDEMPOTENT_INSERT, EffectKind.MONOTONE,
))
_ORDER_INDEPENDENT = frozenset((
    EffectKind.INCREMENT, EffectKind.IDEMPOTENT_INSERT,
))


@dataclass(frozen=True)
class WriteSite:
    """One syntactic write to one variable, with its guard context."""

    var: str
    op: str  #: ``"<-"``, ``"++"`` or ``"--"``
    kind: EffectKind  #: site-level kind, before the per-variable join
    provenance: str  #: pretty-printed policy text of the write
    #: literal written, when the value is a single static literal
    literal: object = None
    #: literal values of positive same-variable equality guards in scope
    guard_literals: tuple = ()
    atomic: bool = False  #: lexically inside an ``atomic()`` block

    def to_dict(self) -> dict:
        return {
            "var": self.var,
            "op": self.op,
            "kind": self.kind.value,
            "provenance": self.provenance,
            "atomic": self.atomic,
        }


@dataclass(frozen=True)
class VariableEffect:
    """The per-variable join of every write site touching it."""

    var: str
    kind: EffectKind
    sites: tuple  #: tuple[WriteSite]
    read_sites: tuple  #: pretty-printed ``StateTest`` occurrences
    direction: int | None = None  #: +1 / -1 for MONOTONE, else None

    @property
    def mergeable(self) -> bool:
        return self.kind.mergeable

    @property
    def order_independent(self) -> bool:
        return self.kind.order_independent

    @property
    def read(self) -> bool:
        return bool(self.read_sites)

    def to_dict(self) -> dict:
        return {
            "var": self.var,
            "kind": self.kind.value,
            "mergeable": self.mergeable,
            "order_independent": self.order_independent,
            "direction": self.direction,
            "writes": [site.to_dict() for site in self.sites],
            "reads": list(self.read_sites),
        }


@dataclass(frozen=True)
class RaceFinding:
    """Two conflicting sites on one variable (or variable group)."""

    code: str  #: stable diagnostic code, e.g. ``SNAP-E001``
    variable: str
    site_a: str  #: pretty-printed provenance of the first site
    site_b: str  #: pretty-printed provenance of the second site
    severity: str  #: ``"order-dependent"`` or ``"benign-commutative"``
    category: str  #: ``"parallel"`` or ``"transaction"``
    message: str

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "variable": self.variable,
            "site_a": self.site_a,
            "site_b": self.site_b,
            "severity": self.severity,
            "category": self.category,
            "message": self.message,
        }


@dataclass(frozen=True)
class EffectReport:
    """Everything :func:`analyze_effects` proved about one policy."""

    variables: dict  #: {var: VariableEffect}
    races: tuple = ()  #: Parallel-arm RaceFindings
    hazards: tuple = ()  #: cross-variable transaction RaceFindings
    atomic_groups: tuple = ()  #: written-variable partition (frozensets)

    def kind(self, var: str) -> EffectKind | None:
        effect = self.variables.get(var)
        return effect.kind if effect is not None else None

    @property
    def order_dependent_races(self) -> tuple:
        """Parallel-composition races whose merge order changes the store."""
        return tuple(
            f for f in self.races if f.severity == "order-dependent"
        )

    @property
    def interleaving_safe(self) -> bool:
        """No interleaving of concurrent in-flight packets can reach a
        store that no serial (OBS) order produces.

        True iff there is no order-dependent ``Parallel`` race and at
        most one *order-sensitive* atomic group — a group of
        ``atomic()``-tied (hence co-located) written variables that
        either contains an order-dependent write kind or is both read
        and written.  All ops on a sensitive group execute atomically at
        its owner switch, so its visit order *is* a serialization; every
        other written group must then be value-independent commutative.
        """
        if self.order_dependent_races:
            return False
        return len(self._sensitive_groups()) <= 1

    def _sensitive_groups(self) -> list:
        sensitive = []
        for group in self.atomic_groups:
            for var in group:
                effect = self.variables.get(var)
                if effect is None:
                    continue
                if not effect.kind.order_independent or effect.read:
                    sensitive.append(group)
                    break
        return sensitive

    @property
    def mergeable_vars(self) -> frozenset:
        return frozenset(
            var for var, effect in self.variables.items() if effect.mergeable
        )

    def to_dict(self) -> dict:
        """JSON-able form (stored in ``CompilationResult.model_stats``)."""
        return {
            "variables": {
                var: effect.to_dict()
                for var, effect in sorted(self.variables.items())
            },
            "races": [f.to_dict() for f in self.races],
            "hazards": [f.to_dict() for f in self.hazards],
            "atomic_groups": [sorted(g) for g in self.atomic_groups],
            "interleaving_safe": self.interleaving_safe,
        }


# -- AST walk -----------------------------------------------------------------


def _literal(expr) -> tuple:
    """``(is_literal, value)`` for a (possibly vector) write value."""
    parts = ast.flatten_expr(expr)
    if any(not isinstance(part, ast.Value) for part in parts):
        return False, None
    if len(parts) == 1:
        return True, parts[0].value
    return True, tuple(part.value for part in parts)


def _positive_state_guards(pred) -> list:
    """Positive ``StateTest``s a conjunction certainly implies.

    Only ``And``-conjuncts count; anything under ``Or``/``Not`` may not
    hold on the branch, so it is conservatively ignored.
    """
    if isinstance(pred, ast.StateTest):
        return [pred]
    if isinstance(pred, ast.And):
        return (_positive_state_guards(pred.left)
                + _positive_state_guards(pred.right))
    return []


def _predicate_reads(pred, reads: dict) -> None:
    """Collect every ``StateTest`` under a predicate into ``reads``."""
    if isinstance(pred, ast.StateTest):
        reads.setdefault(pred.var, []).append(pretty(pred))
    elif isinstance(pred, ast.Not):
        _predicate_reads(pred.pred, reads)
    elif isinstance(pred, (ast.And, ast.Or)):
        _predicate_reads(pred.left, reads)
        _predicate_reads(pred.right, reads)


def _merge(into: dict, other: dict) -> dict:
    for key, items in other.items():
        into.setdefault(key, []).extend(items)
    return into


class _Walker:
    """Recursive site collector; returns per-subtree read/write maps so
    ``Parallel`` handlers can cross-reference their arms."""

    def __init__(self):
        self.sites: dict = {}  #: {var: [WriteSite]}
        self.reads: dict = {}  #: {var: [str]}
        self.overlaps: list = []  #: (var, site_a, site_b, conflict)

    def walk(self, node, guards: tuple, atomic: bool) -> tuple:
        """Returns ``(writes, reads)`` maps for this subtree."""
        if isinstance(node, ast.Predicate):
            reads: dict = {}
            _predicate_reads(node, reads)
            _merge(self.reads, reads)
            return {}, reads
        if isinstance(node, (ast.Mod,)):
            return {}, {}
        if isinstance(node, ast.StateMod):
            is_lit, value = _literal(node.value)
            kind = EffectKind.CONST_WRITE if is_lit else EffectKind.GENERAL_RMW
            site = WriteSite(
                var=node.var, op="<-", kind=kind, provenance=pretty(node),
                literal=value if is_lit else None,
                guard_literals=self._same_var_guards(node.var, guards),
                atomic=atomic,
            )
            self.sites.setdefault(node.var, []).append(site)
            return {node.var: [site]}, {}
        if isinstance(node, (ast.StateIncr, ast.StateDecr)):
            op = "++" if isinstance(node, ast.StateIncr) else "--"
            site = WriteSite(
                var=node.var, op=op, kind=EffectKind.INCREMENT,
                provenance=pretty(node),
                guard_literals=self._same_var_guards(node.var, guards),
                atomic=atomic,
            )
            self.sites.setdefault(node.var, []).append(site)
            return {node.var: [site]}, {}
        if isinstance(node, ast.Seq):
            writes_l, reads_l = self.walk(node.left, guards, atomic)
            inner = guards
            if isinstance(node.left, ast.Predicate):
                inner = guards + tuple(_positive_state_guards(node.left))
            writes_r, reads_r = self.walk(node.right, inner, atomic)
            return (_merge(writes_l, writes_r), _merge(reads_l, reads_r))
        if isinstance(node, ast.If):
            _, reads_p = self.walk(node.pred, guards, atomic)
            then_guards = guards + tuple(_positive_state_guards(node.pred))
            writes_t, reads_t = self.walk(node.then, then_guards, atomic)
            writes_e, reads_e = self.walk(node.orelse, guards, atomic)
            writes = _merge(writes_t, writes_e)
            return writes, _merge(_merge(reads_p, reads_t), reads_e)
        if isinstance(node, ast.Parallel):
            writes_l, reads_l = self.walk(node.left, guards, atomic)
            writes_r, reads_r = self.walk(node.right, guards, atomic)
            for var in set(writes_l) & set(writes_r):
                self.overlaps.append(
                    (var, writes_l[var][0], writes_r[var][0], "write-write")
                )
            for var in set(reads_l) & set(writes_r):
                self.overlaps.append(
                    (var, reads_l[var][0], writes_r[var][0].provenance,
                     "read-write")
                )
            for var in set(reads_r) & set(writes_l):
                self.overlaps.append(
                    (var, reads_r[var][0], writes_l[var][0].provenance,
                     "read-write")
                )
            return (_merge(writes_l, writes_r), _merge(reads_l, reads_r))
        if isinstance(node, ast.Atomic):
            return self.walk(node.body, guards, True)
        return {}, {}

    @staticmethod
    def _same_var_guards(var: str, guards: tuple) -> tuple:
        """Literal values of in-scope equality guards on ``var`` itself."""
        out = []
        for test in guards:
            if test.var != var:
                continue
            is_lit, value = _literal(test.value)
            if is_lit:
                out.append(value)
        return tuple(out)


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _join_variable(var: str, sites: list, read_sites: list) -> VariableEffect:
    """Per-variable join over all write sites (see the module lattice)."""
    kinds = {site.kind for site in sites}
    direction = None
    if kinds == {EffectKind.INCREMENT}:
        kind = EffectKind.INCREMENT
    elif kinds == {EffectKind.CONST_WRITE}:
        literals = {site.literal for site in sites}
        if len(literals) == 1:
            kind = EffectKind.IDEMPOTENT_INSERT
        else:
            kind, direction = _monotone_or_const(var, sites)
    else:
        # Mixed shapes (delta + assign, or any packet-dependent value)
        # join to the lattice top: general read-modify-write.
        kind = EffectKind.GENERAL_RMW
    return VariableEffect(
        var=var, kind=kind, sites=tuple(sites),
        read_sites=tuple(read_sites), direction=direction,
    )


def _monotone_or_const(var: str, sites: list) -> tuple:
    """MONOTONE iff every distinct-literal write is equality-guarded on
    its own variable and moves the value in one consistent direction."""
    directions = set()
    for site in sites:
        if not _numeric(site.literal) or not site.guard_literals:
            return EffectKind.CONST_WRITE, None
        for guard_value in site.guard_literals:
            if not _numeric(guard_value):
                return EffectKind.CONST_WRITE, None
            if site.literal > guard_value:
                directions.add(1)
            elif site.literal < guard_value:
                directions.add(-1)
            else:  # writing the guarded value back: a no-op write
                return EffectKind.CONST_WRITE, None
    if len(directions) == 1:
        return EffectKind.MONOTONE, directions.pop()
    return EffectKind.CONST_WRITE, None


# -- race findings ------------------------------------------------------------


def _parallel_findings(overlaps: list, variables: dict) -> tuple:
    findings = []
    seen = set()
    for var, a, b, conflict in overlaps:
        site_a = a.provenance if isinstance(a, WriteSite) else a
        site_b = b.provenance if isinstance(b, WriteSite) else b
        key = (var, site_a, site_b, conflict)
        if key in seen:
            continue
        seen.add(key)
        if conflict == "read-write":
            findings.append(RaceFinding(
                code="SNAP-W102", variable=var, site_a=site_a, site_b=site_b,
                severity="benign-commutative", category="parallel",
                message=(
                    f"parallel arms read and write '{var}'; SNAP parallel "
                    "composition reads the pre-state in both arms, so this "
                    "is well-defined — verify that is the intent"
                ),
            ))
            continue
        effect = variables.get(var)
        if effect is not None and effect.kind.order_independent:
            findings.append(RaceFinding(
                code="SNAP-W101", variable=var, site_a=site_a, site_b=site_b,
                severity="benign-commutative", category="parallel",
                message=(
                    f"parallel arms both write '{var}' but every write is "
                    f"{effect.kind.value}: the merge commutes"
                ),
            ))
        else:
            kind = effect.kind.value if effect is not None else "?"
            findings.append(RaceFinding(
                code="SNAP-E001", variable=var, site_a=site_a, site_b=site_b,
                severity="order-dependent", category="parallel",
                message=(
                    f"parallel arms both write '{var}' with {kind} effects: "
                    "the merged value depends on arm order"
                ),
            ))
    return tuple(findings)


def _atomic_groups(policy, written: set) -> tuple:
    """Partition the written variables by the ``atomic()``-tie relation.

    Tied variables are co-located by the MILP, so each group updates
    atomically per packet at one switch; untied written variables are
    singleton groups.
    """
    from repro.analysis.dependency import analyze_dependencies

    deps = analyze_dependencies(policy)
    grouped: dict = {}
    for tie in deps.tied:
        members = frozenset(var for var in tie if var in written)
        for var in members:
            grouped[var] = members
    groups = {
        grouped.get(var, frozenset((var,))) for var in written
    }
    return tuple(sorted(groups, key=lambda g: sorted(g)))


def _transaction_findings(report_vars: dict, groups: tuple) -> tuple:
    """A cross-variable interleaving hazard: two or more order-sensitive
    atomic groups, none of which can serve as the serialization point."""
    sensitive = []
    for group in groups:
        for var in group:
            effect = report_vars.get(var)
            if effect is None:
                continue
            if not effect.kind.order_independent or effect.read:
                sensitive.append((group, effect))
                break
    if len(sensitive) < 2:
        return ()
    (group_a, effect_a), (group_b, effect_b) = sensitive[0], sensitive[1]
    names = " + ".join(
        "{" + ", ".join(sorted(group)) + "}" for group, _ in sensitive
    )
    return (RaceFinding(
        code="SNAP-W103",
        variable=names,
        site_a=effect_a.sites[0].provenance,
        site_b=effect_b.sites[0].provenance,
        severity="order-dependent", category="transaction",
        message=(
            f"{len(sensitive)} order-sensitive variable groups ({names}) "
            "update without atomic(): concurrent in-flight packets can "
            "interleave their cross-switch updates into a store no serial "
            "order produces — wrap the updates in atomic() to co-locate "
            "them"
        ),
    ),)


def analyze_effects(policy: ast.Policy) -> EffectReport:
    """Classify every state write in ``policy`` and find its races."""
    walker = _Walker()
    walker.walk(policy, (), False)
    variables = {
        var: _join_variable(var, sites, walker.reads.get(var, []))
        for var, sites in walker.sites.items()
    }
    for var, read_sites in walker.reads.items():
        if var not in variables:
            variables[var] = VariableEffect(
                var=var, kind=EffectKind.IDEMPOTENT_INSERT, sites=(),
                read_sites=tuple(read_sites),
            )
    written = set(walker.sites)
    groups = _atomic_groups(policy, written) if written else ()
    written_vars = {
        var: effect for var, effect in variables.items() if effect.sites
    }
    return EffectReport(
        variables=variables,
        races=_parallel_findings(walker.overlaps, variables),
        hazards=_transaction_findings(written_vars, groups),
        atomic_groups=groups,
    )


# -- xFDD-level classification ------------------------------------------------


def xfdd_effects(root) -> dict:
    """Per-variable :class:`EffectKind` from a compiled diagram's leaves.

    Coarser than the AST analysis (no guard context, so no MONOTONE) but
    it sees exactly what the data plane executes — including
    ``shard_by_inport`` rewrites, whose per-port shard variables appear
    here under their ``var@port`` names.
    """
    from repro.xfdd.actions import StateAssign, StateDelta
    from repro.xfdd.diagram import iter_leaves

    deltas: set = set()
    assigns: dict = {}  #: var -> set of literal value tuples (None = RMW)
    for leaf in iter_leaves(root):
        for seq in leaf.seqs:
            for action in seq:
                if isinstance(action, StateDelta):
                    deltas.add(action.var)
                elif isinstance(action, StateAssign):
                    values = assigns.setdefault(action.var, set())
                    if any(not isinstance(part, ast.Value)
                           for part in action.value):
                        values.add(None)
                    else:
                        values.add(
                            tuple(part.value for part in action.value)
                        )
    kinds: dict = {}
    for var in deltas | set(assigns):
        values = assigns.get(var)
        if values is None:
            kinds[var] = EffectKind.INCREMENT
        elif var in deltas or None in values:
            kinds[var] = EffectKind.GENERAL_RMW
        elif len(values) == 1:
            kinds[var] = EffectKind.IDEMPOTENT_INSERT
        else:
            kinds[var] = EffectKind.CONST_WRITE
    return kinds


def commutative_delta_vars(root) -> frozenset:
    """Variables whose data-plane updates commute with *anything* else
    the diagram can do to the store: written only through ``++``/``--``
    deltas (never assigned) and never state-tested anywhere.

    Integer increments on such a variable can be applied in any order
    relative to any other packet's execution without changing a single
    observable — the soundness basis for the vector tier's
    commutative-overlap fast path (``dataplane/vector.py``).
    """
    kinds = xfdd_effects(root)
    delta_only = {
        var for var, kind in kinds.items() if kind is EffectKind.INCREMENT
    }
    return frozenset(delta_only - set(root.tested_state_vars()))
