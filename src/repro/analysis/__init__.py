"""Program analyses: state dependencies (§4.1), packet-state mapping
(§4.3), and the static state-effect / race analysis (``effects``)."""

from repro.analysis.dependency import DependencyInfo, analyze_dependencies, st_dep
from repro.analysis.effects import (
    EffectKind,
    EffectReport,
    RaceFinding,
    VariableEffect,
    WriteSite,
    analyze_effects,
    commutative_delta_vars,
    xfdd_effects,
)
from repro.analysis.packet_state import PacketStateMapping, packet_state_mapping

__all__ = [
    "DependencyInfo",
    "analyze_dependencies",
    "st_dep",
    "PacketStateMapping",
    "packet_state_mapping",
    "EffectKind",
    "EffectReport",
    "RaceFinding",
    "VariableEffect",
    "WriteSite",
    "analyze_effects",
    "commutative_delta_vars",
    "xfdd_effects",
]
