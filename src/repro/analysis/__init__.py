"""Program analyses: state dependencies (§4.1) and packet-state mapping (§4.3)."""

from repro.analysis.dependency import DependencyInfo, analyze_dependencies, st_dep
from repro.analysis.packet_state import PacketStateMapping, packet_state_mapping

__all__ = [
    "DependencyInfo",
    "analyze_dependencies",
    "st_dep",
    "PacketStateMapping",
    "packet_state_mapping",
]
