"""Packet-state mapping (§4.3).

"Traversing from d's root down to the action sets at d's leaves, we can
gather information associating each flow with the set of state variables
read or written."  A *flow* is a pair of OBS (ingress, egress) ports.

For every root-to-leaf path we compute:

* which ingress ports are compatible with the path's ``inport`` tests,
* which egress ports the leaf can emit to (the last ``outport <- v``
  assignment of each emitting action sequence),
* the state variables read (state tests on the path) and written (state
  actions in the leaf).

Egress attribution:

* an emitting leaf attributes the path's states to the egresses its
  sequences assign (``outport <- v``);
* an emitting sequence with *no* outport assignment has an unknown egress,
  so its states are attributed to every egress (conservative);
* a pure-drop path (packet dies, possibly after state reads/writes) only
  needs *some* flow (u, v) whose S_uv covers its states — the dropped
  packet rides that flow's path to the state switch and dies there
  (Appendix D's stuck-packet technique).  Only when no emitting path
  provides such a flow do we fall back to attributing the drop-path's
  states to every egress.  Without this distinction, programs like the
  stateful firewall (which read state and drop) would force *every* flow
  through the state switch and often make placement infeasible.

Fresh packets enter the OBS with no ``outport``, so a path that requires
a *positive* outport test is unreachable and is skipped.
"""

from __future__ import annotations

from repro.lang.values import matches
from repro.xfdd.actions import DropAction, FieldAssign
from repro.xfdd.diagram import XFDD, iter_paths
from repro.xfdd.tests import FieldValueTest, StateVarTest

INPORT = "inport"
OUTPORT = "outport"


class PacketStateMapping:
    """S_uv: state variables needed by each OBS flow (Table 1 input)."""

    def __init__(self, needed: dict, inports, outports):
        self._needed = {pair: frozenset(vars_) for pair, vars_ in needed.items()}
        self.inports = tuple(inports)
        self.outports = tuple(outports)

    def states_for(self, u, v) -> frozenset:
        return self._needed.get((u, v), frozenset())

    def pairs_needing(self, var: str):
        """All (u, v) flows whose S_uv contains ``var``."""
        return [pair for pair, vars_ in self._needed.items() if var in vars_]

    def items(self):
        return self._needed.items()

    def all_state_vars(self) -> frozenset:
        out = frozenset()
        for vars_ in self._needed.values():
            out |= vars_
        return out

    def __repr__(self):
        rows = ", ".join(
            f"{u}->{v}:{sorted(vars_)}" for (u, v), vars_ in sorted(self._needed.items())
        )
        return f"PacketStateMapping({rows})"


def _path_inports(path, inports):
    """Ingress ports compatible with the path's inport tests."""
    allowed = set(inports)
    for test, result in path:
        if isinstance(test, FieldValueTest) and test.field == INPORT:
            if result:
                allowed = {p for p in allowed if matches(p, test.value)}
            else:
                allowed = {p for p in allowed if not matches(p, test.value)}
    return allowed


def _path_reachable(path) -> bool:
    """False when the path needs a positive outport test (fresh packets
    carry no outport)."""
    for test, result in path:
        if isinstance(test, FieldValueTest) and test.field == OUTPORT and result:
            return False
    return True


def _path_reads(path) -> frozenset:
    return frozenset(
        test.var for test, _ in path if isinstance(test, StateVarTest)
    )


def _leaf_egresses(leaf, outports):
    """(egress ports, needs_all) for the leaf's emitting sequences."""
    egresses = set()
    unknown = False
    for seq in leaf.seqs:
        if any(isinstance(action, DropAction) for action in seq):
            continue
        assigned = None
        for action in seq:
            if isinstance(action, FieldAssign) and action.field == OUTPORT:
                assigned = action.value
        if assigned is None:
            unknown = True
        else:
            egresses.add(assigned)
    return egresses & set(outports), unknown


def packet_state_mapping(xfdd: XFDD, inports, outports) -> PacketStateMapping:
    """Compute S_uv for every OBS port pair by walking the xFDD's paths."""
    needed: dict = {}
    outport_set = list(outports)
    deferred: list = []  # (sources, states) of pure-drop paths

    def attribute(sources, targets, states):
        for u in sources:
            for v in targets:
                if u == v:
                    continue
                key = (u, v)
                needed[key] = needed.get(key, frozenset()) | states

    for path, leaf in iter_paths(xfdd):
        if not _path_reachable(path):
            continue
        states = _path_reads(path) | leaf.written_state_vars()
        if not states:
            continue
        sources = _path_inports(path, inports)
        if not sources:
            continue
        egresses, unknown = _leaf_egresses(leaf, outport_set)
        if egresses and not unknown:
            attribute(sources, egresses, states)
        elif unknown:
            attribute(sources, set(outport_set), states)
        else:
            # Pure-drop path: defer — it only needs an existing flow to
            # ride to the state switch (see module docstring).
            deferred.append((sources, states))

    for sources, states in deferred:
        for u in sources:
            for s in states:
                covered = any(
                    s in needed.get((u, v), frozenset())
                    for v in outport_set
                    if v != u
                )
                if not covered:
                    attribute((u,), set(outport_set), frozenset((s,)))
    return PacketStateMapping(needed, inports, outports)
