"""Packet-state mapping (§4.3).

"Traversing from d's root down to the action sets at d's leaves, we can
gather information associating each flow with the set of state variables
read or written."  A *flow* is a pair of OBS (ingress, egress) ports.

For every root-to-leaf path we compute:

* which ingress ports are compatible with the path's ``inport`` tests,
* which egress ports the leaf can emit to (the last ``outport <- v``
  assignment of each emitting action sequence),
* the state variables read (state tests on the path) and written (state
  actions in the leaf).

Egress attribution:

* an emitting leaf attributes the path's states to the egresses its
  sequences assign (``outport <- v``);
* an emitting sequence with *no* outport assignment has an unknown egress,
  so its states are attributed to every egress (conservative);
* a pure-drop path (packet dies, possibly after state reads/writes) only
  needs *some* flow (u, v) whose S_uv covers its states — the dropped
  packet rides that flow's path to the state switch and dies there
  (Appendix D's stuck-packet technique).  Only when no emitting path
  provides such a flow do we fall back to attributing the drop-path's
  states to every egress.  Without this distinction, programs like the
  stateful firewall (which read state and drop) would force *every* flow
  through the state switch and often make placement infeasible.

Fresh packets enter the OBS with no ``outport``, so a path that requires
a *positive* outport test is unreachable and is skipped.
"""

from __future__ import annotations

from repro.lang.values import matches
from repro.xfdd.actions import DropAction, FieldAssign
from repro.xfdd.diagram import XFDD, Leaf, iter_paths
from repro.xfdd.tests import FieldValueTest, StateVarTest

INPORT = "inport"
OUTPORT = "outport"


class PacketStateMapping:
    """S_uv: state variables needed by each OBS flow (Table 1 input)."""

    def __init__(self, needed: dict, inports, outports):
        self._needed = {pair: frozenset(vars_) for pair, vars_ in needed.items()}
        self.inports = tuple(inports)
        self.outports = tuple(outports)

    def states_for(self, u, v) -> frozenset:
        return self._needed.get((u, v), frozenset())

    def pairs_needing(self, var: str):
        """All (u, v) flows whose S_uv contains ``var``."""
        return [pair for pair, vars_ in self._needed.items() if var in vars_]

    def items(self):
        return self._needed.items()

    def all_state_vars(self) -> frozenset:
        out = frozenset()
        for vars_ in self._needed.values():
            out |= vars_
        return out

    def __repr__(self):
        rows = ", ".join(
            f"{u}->{v}:{sorted(vars_)}" for (u, v), vars_ in sorted(self._needed.items())
        )
        return f"PacketStateMapping({rows})"


def _path_inports(path, inports):
    """Ingress ports compatible with the path's inport tests."""
    allowed = set(inports)
    for test, result in path:
        if isinstance(test, FieldValueTest) and test.field == INPORT:
            if result:
                allowed = {p for p in allowed if matches(p, test.value)}
            else:
                allowed = {p for p in allowed if not matches(p, test.value)}
    return allowed


def _path_reachable(path) -> bool:
    """False when the path needs a positive outport test (fresh packets
    carry no outport)."""
    for test, result in path:
        if isinstance(test, FieldValueTest) and test.field == OUTPORT and result:
            return False
    return True


def _path_reads(path) -> frozenset:
    return frozenset(
        test.var for test, _ in path if isinstance(test, StateVarTest)
    )


def _leaf_egresses(leaf, outports):
    """(egress ports, needs_all) for the leaf's emitting sequences."""
    egresses = set()
    unknown = False
    for seq in leaf.seqs:
        if any(isinstance(action, DropAction) for action in seq):
            continue
        assigned = None
        for action in seq:
            if isinstance(action, FieldAssign) and action.field == OUTPORT:
                assigned = action.value
        if assigned is None:
            unknown = True
        else:
            egresses.add(assigned)
    return egresses & set(outports), unknown


def path_summaries(xfdd: XFDD, memo: dict | None = None) -> frozenset:
    """Port-independent digest of every reachable root-to-leaf path.

    Returns a frozenset of ``(constraints, reads, leaf)`` triples, where
    ``constraints`` is a frozenset of ``(value, positive)`` inport tests
    taken along the path and ``reads`` the state variables tested.  Paths
    through a *positive* outport test are pruned (fresh packets carry no
    outport), and paths that differ only in state-irrelevant tests
    collapse into one triple — which is both the speedup (the diagram is
    walked as a DAG, one visit per node) and the memoization hook: the
    summary of a shared sub-diagram is computed once and, with a
    caller-supplied ``memo`` keyed by node identity, survives across
    compilations that splice the same interned subtrees (node identity is
    pinned by the owning :class:`~repro.xfdd.diagram.DiagramFactory`).
    """
    if memo is None:
        memo = {}

    def summarize(node) -> frozenset:
        key = id(node)
        hit = memo.get(key)
        if hit is not None:
            return hit
        if isinstance(node, Leaf):
            result = frozenset(((frozenset(), frozenset(), node),))
        else:
            hi = summarize(node.hi)
            lo = summarize(node.lo)
            test = node.test
            if isinstance(test, StateVarTest):
                # Both branches read the variable: deciding the test
                # requires it regardless of which way the packet goes.
                hi = frozenset(
                    (c, reads | {test.var}, leaf) for c, reads, leaf in hi
                )
                lo = frozenset(
                    (c, reads | {test.var}, leaf) for c, reads, leaf in lo
                )
            elif isinstance(test, FieldValueTest) and test.field == INPORT:
                hi = frozenset(
                    (c | {(test.value, True)}, reads, leaf)
                    for c, reads, leaf in hi
                )
                lo = frozenset(
                    (c | {(test.value, False)}, reads, leaf)
                    for c, reads, leaf in lo
                )
            elif isinstance(test, FieldValueTest) and test.field == OUTPORT:
                hi = frozenset()  # positive outport test: unreachable
            result = hi | lo
        memo[key] = result
        return result

    return summarize(xfdd)


def _constrained_inports(constraints, inports):
    """Ingress ports compatible with a summary's inport constraints."""
    allowed = set(inports)
    for value, positive in constraints:
        if positive:
            allowed = {p for p in allowed if matches(p, value)}
        else:
            allowed = {p for p in allowed if not matches(p, value)}
    return allowed


def _summary_sort_key(entry):
    constraints, reads, leaf = entry
    return (sorted(map(repr, constraints)), sorted(reads), repr(leaf))


def packet_state_mapping(
    xfdd: XFDD, inports, outports, memo: dict | None = None
) -> PacketStateMapping:
    """Compute S_uv for every OBS port pair from the xFDD's path summaries.

    Equivalent to enumerating every root-to-leaf path (the previous
    implementation, kept as :func:`packet_state_mapping_paths` for the
    equivalence property): summaries merge exactly the paths that
    contribute identical ``(sources, states, leaf)`` attributions, and
    both the attribution and the deferred pure-drop fallback are
    idempotent set unions, so collapsing duplicates cannot change the
    result.  ``memo`` (optional, node-id keyed) lets a long-lived session
    reuse sub-diagram summaries across recompilations.
    """
    needed: dict = {}
    outport_set = list(outports)
    deferred: list = []  # (sources, states) of pure-drop summaries

    def attribute(sources, targets, states):
        for u in sources:
            for v in targets:
                if u == v:
                    continue
                key = (u, v)
                needed[key] = needed.get(key, frozenset()) | states

    # Sorted iteration: the final mapping is order-independent (see
    # docstring) but dict insertion order — which downstream model
    # construction sees — should not depend on set-hash order.
    summaries = sorted(path_summaries(xfdd, memo), key=_summary_sort_key)
    egress_cache: dict = {}
    for constraints, reads, leaf in summaries:
        states = reads | leaf.written_state_vars()
        if not states:
            continue
        sources = _constrained_inports(constraints, inports)
        if not sources:
            continue
        cached = egress_cache.get(id(leaf))
        if cached is None:
            cached = _leaf_egresses(leaf, outport_set)
            egress_cache[id(leaf)] = cached
        egresses, unknown = cached
        if egresses and not unknown:
            attribute(sources, egresses, states)
        elif unknown:
            attribute(sources, set(outport_set), states)
        else:
            # Pure-drop path: defer — it only needs an existing flow to
            # ride to the state switch (see module docstring).
            deferred.append((sources, states))

    for sources, states in deferred:
        for u in sources:
            for s in states:
                covered = any(
                    s in needed.get((u, v), frozenset())
                    for v in outport_set
                    if v != u
                )
                if not covered:
                    attribute((u,), set(outport_set), frozenset((s,)))
    return PacketStateMapping(
        dict(sorted(needed.items())), inports, outports
    )


def packet_state_mapping_paths(xfdd: XFDD, inports, outports) -> PacketStateMapping:
    """Reference implementation: explicit path enumeration (pre-memo).

    Kept for the equivalence property in the test suite; production code
    uses :func:`packet_state_mapping`.
    """
    needed: dict = {}
    outport_set = list(outports)
    deferred: list = []  # (sources, states) of pure-drop paths

    def attribute(sources, targets, states):
        for u in sources:
            for v in targets:
                if u == v:
                    continue
                key = (u, v)
                needed[key] = needed.get(key, frozenset()) | states

    for path, leaf in iter_paths(xfdd):
        if not _path_reachable(path):
            continue
        states = _path_reads(path) | leaf.written_state_vars()
        if not states:
            continue
        sources = _path_inports(path, inports)
        if not sources:
            continue
        egresses, unknown = _leaf_egresses(leaf, outport_set)
        if egresses and not unknown:
            attribute(sources, egresses, states)
        elif unknown:
            attribute(sources, set(outport_set), states)
        else:
            deferred.append((sources, states))

    for sources, states in deferred:
        for u in sources:
            for s in states:
                covered = any(
                    s in needed.get((u, v), frozenset())
                    for v in outport_set
                    if v != u
                )
                if not covered:
                    attribute((u,), set(outport_set), frozenset((s,)))
    return PacketStateMapping(needed, inports, outports)
