"""AST transformations on policies.

:func:`rename_state_vars` namespaces a policy's state variables — used
when composing several instances of library programs so each instance owns
its own state (the Figure 11 workload: "the dependency graph for the final
policy is a collection of the dependency graphs of the composed policies",
which only holds when instances do not alias each other's variables).
"""

from __future__ import annotations

from repro.lang import ast


def rename_state_vars(policy: ast.Policy, mapping) -> ast.Policy:
    """Rewrite state-variable names.

    ``mapping`` is either a dict ``old -> new`` or a callable applied to
    every variable name.
    """
    rename = mapping if callable(mapping) else lambda v: mapping.get(v, v)

    def walk(node: ast.Policy) -> ast.Policy:
        if isinstance(node, ast.StateTest):
            return ast.StateTest(rename(node.var), node.index, node.value)
        if isinstance(node, ast.StateMod):
            return ast.StateMod(rename(node.var), node.index, node.value)
        if isinstance(node, ast.StateIncr):
            return ast.StateIncr(rename(node.var), node.index)
        if isinstance(node, ast.StateDecr):
            return ast.StateDecr(rename(node.var), node.index)
        if isinstance(node, ast.Not):
            return ast.Not(walk(node.pred))
        if isinstance(node, ast.And):
            return ast.And(walk(node.left), walk(node.right))
        if isinstance(node, ast.Or):
            return ast.Or(walk(node.left), walk(node.right))
        if isinstance(node, ast.Parallel):
            return ast.Parallel(walk(node.left), walk(node.right))
        if isinstance(node, ast.Seq):
            return ast.Seq(walk(node.left), walk(node.right))
        if isinstance(node, ast.If):
            return ast.If(walk(node.pred), walk(node.then), walk(node.orelse))
        if isinstance(node, ast.Atomic):
            return ast.Atomic(walk(node.body))
        return node

    return walk(policy)


def namespace_state_vars(policy: ast.Policy, prefix: str) -> ast.Policy:
    """Prefix every state variable with ``prefix`` (instance isolation)."""
    return rename_state_vars(policy, lambda var: f"{prefix}{var}")
