"""State sharding (§7.3, Appendix C).

"The compiler can partition s[inport] into k disjoint state variables,
each storing s for one port.  The MILP can decide placement and routing as
before, this time with the option of placing the partitions at different
places without worrying about synchronization, as the shards store
disjoint parts of s."

:func:`shard_by_inport` rewrites a policy: every access ``s[... inport ...]``
becomes an access to the per-port shard ``s@p`` under an ``inport = p``
guard.  The transformation is semantics-preserving for packets entering
through one of the given ports (i.e. all packets — inport is set by the
ingress), with shard ``s@p`` holding exactly the slice ``s[p]``.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import CompileError


def shard_name(var: str, port: int) -> str:
    return f"{var}@{port}"


def _substitute(policy: ast.Policy, var: str, port: int) -> ast.Policy:
    """Rewrite accesses to ``var`` for a fixed inport value."""

    def fix_index(index: ast.Expr) -> ast.Expr:
        parts = ast.flatten_expr(index)
        if not any(isinstance(p, ast.Field) and p.name == "inport" for p in parts):
            raise CompileError(
                f"cannot shard {var!r} by inport: an access does not index "
                "by the inport field"
            )
        fixed = [
            ast.Value(port)
            if isinstance(p, ast.Field) and p.name == "inport"
            else p
            for p in parts
        ]
        return fixed[0] if len(fixed) == 1 else ast.Vector(fixed)

    def walk(node: ast.Policy) -> ast.Policy:
        if isinstance(node, ast.StateTest) and node.var == var:
            return ast.StateTest(shard_name(var, port), fix_index(node.index), node.value)
        if isinstance(node, ast.StateMod) and node.var == var:
            return ast.StateMod(shard_name(var, port), fix_index(node.index), node.value)
        if isinstance(node, ast.StateIncr) and node.var == var:
            return ast.StateIncr(shard_name(var, port), fix_index(node.index))
        if isinstance(node, ast.StateDecr) and node.var == var:
            return ast.StateDecr(shard_name(var, port), fix_index(node.index))
        if isinstance(node, ast.Not):
            return ast.Not(walk(node.pred))
        if isinstance(node, ast.And):
            return ast.And(walk(node.left), walk(node.right))
        if isinstance(node, ast.Or):
            return ast.Or(walk(node.left), walk(node.right))
        if isinstance(node, ast.Parallel):
            return ast.Parallel(walk(node.left), walk(node.right))
        if isinstance(node, ast.Seq):
            return ast.Seq(walk(node.left), walk(node.right))
        if isinstance(node, ast.If):
            return ast.If(walk(node.pred), walk(node.then), walk(node.orelse))
        if isinstance(node, ast.Atomic):
            return ast.Atomic(walk(node.body))
        return node

    return walk(policy)


def shard_by_inport(policy: ast.Policy, var: str, ports) -> ast.Policy:
    """Split ``var`` into per-inport shards.

    ``ports`` must cover every OBS port packets can enter through; the
    final else-branch (unreachable in a correctly-attached network) drops.
    """
    ports = sorted(ports)
    if not ports:
        raise CompileError("shard_by_inport needs at least one port")
    if var not in ast.state_variables(policy):
        raise CompileError(f"policy does not use state variable {var!r}")
    result: ast.Policy = ast.Drop()
    for port in reversed(ports):
        result = ast.If(
            ast.Test("inport", port), _substitute(policy, var, port), result
        )
    return result


def shard_defaults(defaults: dict, var: str, ports) -> dict:
    """Propagate the original variable's default to its shards."""
    out = {name: value for name, value in defaults.items() if name != var}
    for port in ports:
        out[shard_name(var, port)] = defaults.get(var, False)
    return out
