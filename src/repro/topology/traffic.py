"""Gravity-model traffic matrices (§6.2.1, Roughan [31]).

Each OBS port gets an activity weight drawn from an exponential
distribution; the demand between ports u and v is proportional to
``w_u * w_v``, normalized so the total offered load is ``total_demand``.
"""

from __future__ import annotations

from repro.util.rng import make_rng


def gravity_traffic_matrix(ports, total_demand: float = 1000.0, seed: int = 0) -> dict:
    """Demands dict ``(u, v) -> volume`` for all ordered pairs, zero diagonal."""
    ports = list(ports)
    rng = make_rng(seed)
    weights = {p: float(w) for p, w in zip(ports, rng.exponential(1.0, len(ports)))}
    mass = sum(
        weights[u] * weights[v] for u in ports for v in ports if u != v
    )
    scale = total_demand / mass if mass else 0.0
    return {
        (u, v): weights[u] * weights[v] * scale
        for u in ports
        for v in ports
        if u != v
    }


def uniform_traffic_matrix(ports, volume: float = 1.0) -> dict:
    """Equal demand on every ordered pair (tests and microbenches)."""
    ports = list(ports)
    return {(u, v): volume for u in ports for v in ports if u != v}
