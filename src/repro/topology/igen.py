"""IGen-style synthetic topologies for the scaling experiment (Figure 10).

IGen [29] builds router-level topologies with network-design heuristics:
routers are placed in a plane, clustered into PoPs, each PoP is wired with
a cheap local structure, and PoPs are joined by a backbone.  We reproduce
that recipe: k-means clustering of random points, intra-cluster star plus
nearest-neighbour rings, and a backbone connecting each cluster head to
its two nearest heads (plus a ring for redundancy).

As in §6.2.1, 70% of the switches with the lowest degrees are chosen as
edge switches.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.util.rng import make_rng


def _kmeans(points: np.ndarray, k: int, rng, iterations: int = 25):
    centers = points[rng.choice(len(points), size=k, replace=False)]
    assign = np.zeros(len(points), dtype=int)
    for _ in range(iterations):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = distances.argmin(axis=1)
        for c in range(k):
            members = points[assign == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return assign, centers


def igen_topology(
    num_switches: int,
    num_ports: int | None = None,
    edge_fraction: float = 0.7,
    capacity: float = 10_000.0,
    seed: int = 0,
) -> Topology:
    """Generate an IGen-like topology with ``num_switches`` routers."""
    rng = make_rng(seed)
    topo = Topology(f"igen-{num_switches}")
    names = [f"r{i}" for i in range(num_switches)]
    for name in names:
        topo.add_switch(name)
    points = rng.random((num_switches, 2))
    k = max(1, num_switches // 10)
    assign, centers = _kmeans(points, k, rng)

    added: set = set()

    def connect(i: int, j: int):
        key = (min(i, j), max(i, j))
        if i != j and key not in added:
            added.add(key)
            topo.add_link(names[i], names[j], capacity)

    heads = []
    for c in range(k):
        members = np.flatnonzero(assign == c)
        if len(members) == 0:
            continue
        # Cluster head: member closest to the center.
        dist = ((points[members] - centers[c]) ** 2).sum(axis=1)
        head = int(members[dist.argmin()])
        heads.append(head)
        # Star to the head plus a local ring for redundancy.
        ordered = sorted(int(m) for m in members if m != head)
        for m in ordered:
            connect(m, head)
        for a, b in zip(ordered, ordered[1:]):
            connect(a, b)
    # Backbone: ring over heads plus 2-nearest-neighbour chords.
    if len(heads) > 1:
        for a, b in zip(heads, heads[1:] + heads[:1]):
            connect(a, b)
        head_points = points[heads]
        for idx, head in enumerate(heads):
            dist = ((head_points - head_points[idx]) ** 2).sum(axis=1)
            for neighbour in dist.argsort()[1:3]:
                connect(head, heads[int(neighbour)])

    degree = {name: 0 for name in names}
    for a, b in added:
        degree[names[a]] += 1
        degree[names[b]] += 1
    order = sorted(names, key=lambda n: (degree[n], n))
    num_edge = max(1, int(edge_fraction * num_switches))
    edge_switches = order[:num_edge]
    if num_ports is None:
        num_ports = len(edge_switches)
    for port in range(1, num_ports + 1):
        topo.attach_port(port, edge_switches[(port - 1) % len(edge_switches)])
    topo.validate()
    return topo
