"""The running-example campus topology (Figure 2).

I1/I2 are Internet gateways, D1–D4 department edge switches (D4 is the CS
building, subnet 10.0.6.0/24), C1–C6 core routers.  External ports 1–6
carry subnets 10.0.<port>.0/24.

The wiring reproduces the paths §2.2 reports: I1/D1 reach D4 via C1 and
C5; I2/D2 via C2 and C6; D3 via C5.
"""

from __future__ import annotations

from repro.topology.graph import Topology
from repro.util.ipaddr import IPPrefix

#: OBS port -> (switch, attached subnet)
CAMPUS_PORTS = {
    1: ("I1", IPPrefix("10.0.1.0/24")),
    2: ("I2", IPPrefix("10.0.2.0/24")),
    3: ("D1", IPPrefix("10.0.3.0/24")),
    4: ("D2", IPPrefix("10.0.4.0/24")),
    5: ("D3", IPPrefix("10.0.5.0/24")),
    6: ("D4", IPPrefix("10.0.6.0/24")),
}


def campus_topology(capacity: float = 1000.0) -> Topology:
    """Build the Figure 2 campus network with uniform link capacities."""
    topo = Topology("campus")
    for switch in ("I1", "I2", "D1", "D2", "D3", "D4", "C1", "C2", "C3", "C4", "C5", "C6"):
        topo.add_switch(switch)
    links = [
        ("I1", "C1"), ("D1", "C1"),
        ("I2", "C2"), ("D2", "C2"),
        ("D3", "C5"), ("D3", "C3"),
        ("D4", "C5"), ("D4", "C6"),
        ("C1", "C5"), ("C1", "C3"),
        ("C2", "C6"), ("C2", "C4"),
        ("C3", "C4"), ("C3", "C5"),
        ("C4", "C6"), ("C5", "C6"),
    ]
    for a, b in links:
        topo.add_link(a, b, capacity)
    for port, (switch, _subnet) in CAMPUS_PORTS.items():
        topo.attach_port(port, switch)
    topo.validate()
    return topo


def campus_subnet(port: int) -> IPPrefix:
    """The IP subnet attached to an OBS port (10.0.<port>.0/24)."""
    return CAMPUS_PORTS[port][1]
