"""The physical network model.

A :class:`Topology` is a directed graph of switches with link capacities,
plus a set of numbered OBS *external ports*, each attached to a switch
(§4.4 Table 1: "edge nodes (ports in OBS)").  Internally the MILP expands
each port into its own graph node joined to its switch by a
practically-unbounded link, matching the paper's node model.
"""

from __future__ import annotations

import networkx as nx

from repro.lang.errors import TopologyError

#: Capacity of the virtual port<->switch attachment links.
PORT_LINK_CAPACITY = float("inf")


class Topology:
    """Switches, capacitated links, and OBS external ports."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self.graph = nx.DiGraph()
        self.ports: dict[int, str] = {}

    # -- construction -------------------------------------------------------

    def add_switch(self, name: str) -> None:
        self.graph.add_node(name)

    def add_link(self, a: str, b: str, capacity: float, bidirectional: bool = True):
        """Add a link with the given capacity (both directions by default)."""
        if capacity <= 0:
            raise TopologyError(f"link {a}-{b} needs positive capacity")
        self.graph.add_edge(a, b, capacity=float(capacity))
        if bidirectional:
            self.graph.add_edge(b, a, capacity=float(capacity))

    def attach_port(self, port: int, switch: str) -> None:
        if switch not in self.graph:
            raise TopologyError(f"cannot attach port {port}: no switch {switch!r}")
        if port in self.ports:
            raise TopologyError(f"port {port} already attached")
        self.ports[port] = switch

    # -- queries -------------------------------------------------------------

    def switches(self) -> tuple:
        return tuple(self.graph.nodes)

    def links(self):
        """Directed (a, b, capacity) triples."""
        return [(a, b, data["capacity"]) for a, b, data in self.graph.edges(data=True)]

    def capacity(self, a: str, b: str) -> float:
        try:
            return self.graph.edges[a, b]["capacity"]
        except KeyError:
            raise TopologyError(f"no link {a}->{b}") from None

    def port_switch(self, port: int) -> str:
        try:
            return self.ports[port]
        except KeyError:
            raise TopologyError(f"unknown OBS port {port}") from None

    def edge_switches(self) -> tuple:
        """Switches with at least one external port attached."""
        return tuple(sorted(set(self.ports.values())))

    def num_switches(self) -> int:
        return self.graph.number_of_nodes()

    def num_directed_edges(self) -> int:
        return self.graph.number_of_edges()

    def validate(self) -> None:
        if not self.ports:
            raise TopologyError("topology has no external ports")
        if not nx.is_strongly_connected(self.graph):
            raise TopologyError(f"topology {self.name!r} is not strongly connected")

    def without_link(self, a: str, b: str, bidirectional: bool = True) -> "Topology":
        """A copy with a link removed (failure scenarios)."""
        clone = Topology(self.name + f"-fail-{a}-{b}")
        clone.graph = self.graph.copy()
        clone.ports = dict(self.ports)
        if clone.graph.has_edge(a, b):
            clone.graph.remove_edge(a, b)
        if bidirectional and clone.graph.has_edge(b, a):
            clone.graph.remove_edge(b, a)
        return clone

    def expanded_graph(self) -> nx.DiGraph:
        """Graph with one extra node per OBS port (the MILP's node set)."""
        expanded = self.graph.copy()
        for port, switch in self.ports.items():
            node = port_node(port)
            expanded.add_edge(node, switch, capacity=PORT_LINK_CAPACITY)
            expanded.add_edge(switch, node, capacity=PORT_LINK_CAPACITY)
        return expanded

    def __repr__(self):
        return (
            f"Topology({self.name!r}, switches={self.num_switches()}, "
            f"directed_edges={self.num_directed_edges()}, ports={len(self.ports)})"
        )


def port_node(port: int) -> str:
    """The graph-node name of an OBS port."""
    return f"port:{port}"
