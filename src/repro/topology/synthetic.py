"""Synthetic stand-ins for the paper's evaluation topologies (Table 5).

The Stanford/Berkeley/Purdue configurations and the RocketFuel ISP maps
are not distributable offline, so we generate connected graphs with the
*same switch and (directed) edge counts* and a preferential-attachment
degree profile, then — exactly as §6.2.1 prescribes for the ISP maps —
take "70% of the switches with the lowest degrees as edge switches to
form OBS external ports".

``ports_per_topology`` controls how many OBS ports are attached; the
paper's demand counts (e.g. 144² = 20736 for Stanford) correspond to
``num_ports = sqrt(#demands)``.  Benchmarks default to fewer ports to
keep the per-pair MILP laptop-sized; EXPERIMENTS.md records the scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lang.errors import TopologyError
from repro.topology.graph import Topology
from repro.util.rng import make_rng

#: name -> (switches, directed edges, paper demand count)
TABLE5 = {
    "Stanford": (26, 92, 20736),
    "Berkeley": (25, 96, 34225),
    "Purdue": (98, 232, 24336),
    "AS1755": (87, 322, 3600),
    "AS1221": (104, 302, 5184),
    "AS6461": (138, 744, 9216),
    "AS3257": (161, 656, 12544),
}

ENTERPRISE_NAMES = ("Stanford", "Berkeley", "Purdue")
ISP_NAMES = ("AS1755", "AS1221", "AS6461", "AS3257")


def paper_num_ports(name: str) -> int:
    """The OBS port count implied by Table 5's demand column."""
    demands = TABLE5[name][2]
    return int(round(math.sqrt(demands)))


def synthetic_topology(
    name: str,
    num_switches: int,
    num_directed_edges: int,
    num_ports: int | None = None,
    edge_fraction: float = 0.7,
    capacity: float = 10_000.0,
    seed: int = 0,
) -> Topology:
    """A connected preferential-attachment graph with exact size targets."""
    if num_directed_edges % 2:
        num_directed_edges += 1
    num_links = num_directed_edges // 2
    if num_links < num_switches - 1:
        raise TopologyError(
            f"{name}: {num_links} links cannot connect {num_switches} switches"
        )
    rng = make_rng(seed)
    topo = Topology(name)
    names = [f"s{i}" for i in range(num_switches)]
    for switch in names:
        topo.add_switch(switch)
    degree = np.zeros(num_switches)
    undirected: set = set()

    def connect(i: int, j: int) -> bool:
        key = (min(i, j), max(i, j))
        if i == j or key in undirected:
            return False
        undirected.add(key)
        degree[i] += 1
        degree[j] += 1
        topo.add_link(names[i], names[j], capacity)
        return True

    # Random spanning tree with preferential attachment: node k joins a
    # previous node chosen proportionally to degree+1.
    for k in range(1, num_switches):
        weights = degree[:k] + 1.0
        target = rng.choice(k, p=weights / weights.sum())
        connect(k, int(target))
    # Extra links, still degree-biased, until the link budget is used.
    attempts = 0
    while len(undirected) < num_links and attempts < num_links * 200:
        attempts += 1
        weights = degree + 1.0
        i, j = rng.choice(num_switches, size=2, p=weights / weights.sum())
        connect(int(i), int(j))
    while len(undirected) < num_links:
        # Fall back to uniform choice for very dense targets.
        i, j = rng.integers(0, num_switches, size=2)
        connect(int(i), int(j))

    # 70% lowest-degree switches become edge switches (§6.2.1).
    order = sorted(range(num_switches), key=lambda k: (degree[k], k))
    num_edge = max(1, int(edge_fraction * num_switches))
    edge_switches = [names[k] for k in order[:num_edge]]
    if num_ports is None:
        num_ports = len(edge_switches)
    for port in range(1, num_ports + 1):
        topo.attach_port(port, edge_switches[(port - 1) % len(edge_switches)])
    topo.validate()
    return topo


def table5_topology(name: str, num_ports: int | None = None, seed: int = 0) -> Topology:
    """One of the seven Table 5 topologies, by name."""
    try:
        switches, directed_edges, _ = TABLE5[name]
    except KeyError:
        raise TopologyError(f"unknown Table 5 topology {name!r}") from None
    return synthetic_topology(
        name, switches, directed_edges, num_ports=num_ports, seed=seed
    )


def all_table5_topologies(num_ports: int | None = None, seed: int = 0):
    """All seven topologies in the paper's order."""
    return [
        table5_topology(name, num_ports=num_ports, seed=seed)
        for name in (*ENTERPRISE_NAMES, *ISP_NAMES)
    ]
