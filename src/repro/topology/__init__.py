"""Topologies: the Figure 2 campus, Table 5 stand-ins, IGen generator, traffic."""

from repro.topology.campus import CAMPUS_PORTS, campus_subnet, campus_topology
from repro.topology.graph import PORT_LINK_CAPACITY, Topology, port_node
from repro.topology.igen import igen_topology
from repro.topology.synthetic import (
    ENTERPRISE_NAMES,
    ISP_NAMES,
    TABLE5,
    all_table5_topologies,
    paper_num_ports,
    synthetic_topology,
    table5_topology,
)
from repro.topology.traffic import gravity_traffic_matrix, uniform_traffic_matrix

__all__ = [
    "CAMPUS_PORTS", "campus_subnet", "campus_topology",
    "PORT_LINK_CAPACITY", "Topology", "port_node",
    "igen_topology",
    "ENTERPRISE_NAMES", "ISP_NAMES", "TABLE5",
    "all_table5_topologies", "paper_num_ports", "synthetic_topology",
    "table5_topology",
    "gravity_traffic_matrix", "uniform_traffic_matrix",
]
