"""The TE re-optimization (§6.2, Table 4 "Topology/TM change").

"Once the policy is compiled, we fix the decided state placement, and only
re-optimize routing in response to network events."  With ``P`` fixed the
program becomes a pure LP (all variables continuous), which is why TE runs
much faster than ST — the effect Table 6 shows.
"""

from __future__ import annotations

from repro.analysis.dependency import DependencyInfo
from repro.analysis.packet_state import PacketStateMapping
from repro.milp.placement import PlacementInputs, PlacementModel
from repro.topology.graph import Topology


def build_te_model(
    topology: Topology,
    demands: dict,
    mapping: PacketStateMapping,
    dependencies: DependencyInfo,
    placement: dict,
    stateful_switches=None,
) -> PlacementModel:
    """Construct the routing-only LP with state placement fixed."""
    inputs = PlacementInputs(topology, demands, mapping, dependencies, stateful_switches)
    return PlacementModel(inputs, fixed_placement=placement)


def solve_te(
    topology: Topology,
    demands: dict,
    mapping: PacketStateMapping,
    dependencies: DependencyInfo,
    placement: dict,
    time_limit: float | None = None,
):
    """Build and solve TE in one call; returns a PlacementSolution."""
    return build_te_model(
        topology, demands, mapping, dependencies, placement
    ).solve(time_limit=time_limit)
