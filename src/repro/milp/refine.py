"""Fine-grained flow refinement (§4.4).

"Suppose packet-state mapping finds that only packets with srcip = x need
state variable s.  We refine the MILP input to have two edge nodes per
port, one for traffic with srcip = x and one for the rest, so the MILP can
choose different paths for them."

:func:`split_port` rewrites the MILP inputs: the chosen OBS port becomes
several logical sub-ports attached to the same switch, its demands are
divided among them, and each sub-port carries only the state needs of its
traffic class.  The placement/routing machinery is unchanged — sub-ports
are ordinary ports to it.
"""

from __future__ import annotations

from repro.analysis.packet_state import PacketStateMapping
from repro.lang.errors import TopologyError
from repro.topology.graph import Topology


class PortSplit:
    """Description of one traffic class at a split port.

    Attributes:
        label:    class name (for reporting).
        fraction: share of the original port's demand (must sum to 1).
        states:   either the string ``"inherit"`` (keep the original
                  port's state needs) or an explicit set of variable names
                  this class needs (typically a subset).
    """

    def __init__(self, label: str, fraction: float, states="inherit"):
        if fraction < 0:
            raise ValueError("fraction must be non-negative")
        self.label = label
        self.fraction = float(fraction)
        self.states = states

    def needs(self, inherited: frozenset) -> frozenset:
        if isinstance(self.states, str) and self.states == "inherit":
            return inherited
        return frozenset(self.states)


def split_port(
    topology: Topology,
    demands: dict,
    mapping: PacketStateMapping,
    port: int,
    classes,
):
    """Split ``port`` into one logical sub-port per class.

    Returns ``(new_topology, new_demands, new_mapping, port_of_class)``
    where ``port_of_class`` maps class label -> new port number.  The
    first class reuses the original port number so untouched callers keep
    working.
    """
    classes = list(classes)
    if not classes:
        raise ValueError("need at least one traffic class")
    total = sum(c.fraction for c in classes)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"class fractions must sum to 1, got {total}")
    if port not in topology.ports:
        raise TopologyError(f"unknown OBS port {port}")

    switch = topology.port_switch(port)
    new_topology = Topology(topology.name + f"-split{port}")
    new_topology.graph = topology.graph.copy()
    new_topology.ports = dict(topology.ports)
    next_port = max(topology.ports) + 1
    port_of_class = {}
    for i, cls in enumerate(classes):
        if i == 0:
            port_of_class[cls.label] = port
        else:
            new_topology.ports[next_port] = switch
            port_of_class[cls.label] = next_port
            next_port += 1

    other_ports = [p for p in topology.ports if p != port]
    new_demands: dict = {}
    needed: dict = {}
    for (u, v), demand in demands.items():
        if u != port and v != port:
            new_demands[(u, v)] = demand
    for (u, v), states in mapping.items():
        if u != port and v != port:
            needed[(u, v)] = states
    for cls in classes:
        sub = port_of_class[cls.label]
        for other in other_ports:
            out_demand = demands.get((port, other), 0.0) * cls.fraction
            if out_demand > 0:
                new_demands[(sub, other)] = out_demand
            in_demand = demands.get((other, port), 0.0) * cls.fraction
            if in_demand > 0:
                new_demands[(other, sub)] = in_demand
            out_states = cls.needs(mapping.states_for(port, other))
            if out_states:
                needed[(sub, other)] = out_states
            in_states = cls.needs(mapping.states_for(other, port))
            if in_states:
                needed[(other, sub)] = in_states

    all_ports = sorted(new_topology.ports)
    new_mapping = PacketStateMapping(needed, all_ports, all_ports)
    return new_topology, new_demands, new_mapping, port_of_class
