"""Pluggable solver backends for the compiler's P4/P5 phases.

The pipeline needs two solving capabilities:

* **ST** (§4.4): the joint state-placement + routing decision made at cold
  start and on policy changes;
* **TE** (§6.2): the routing-only re-optimization made on topology and
  traffic-matrix events, against a *standing* model that supports
  incremental patching (``fail_link`` / ``restore_link`` /
  ``set_demands``, §6.2.2).

A :class:`SolverBackend` packages both.  The stock backends are
``"milp"`` (exact, Table 2's constraint system) and ``"greedy"`` (the
§6.2.2 heuristic for ST; TE remains the LP, which is already routing-only
and fast).  Custom backends register via :func:`register_backend` or are
passed directly as instances in ``CompilerOptions.solver``.

Backends count their own work in :attr:`SolverBackend.calls`
(``st_solves`` / ``te_model_builds`` / ``te_solves``) so sessions and
tests can verify that a standing TE model really is being reused across
link events rather than rebuilt.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.lang.errors import SnapError
from repro.milp.heuristic import greedy_solution
from repro.milp.placement import PlacementInputs, PlacementModel
from repro.milp.te import build_te_model
from repro.util.timer import PhaseTimer


@runtime_checkable
class SolverBackend(Protocol):
    """What the controller requires of a solver implementation."""

    name: str
    calls: dict

    def solve_st(
        self,
        topology,
        demands: dict,
        mapping,
        dependencies,
        stateful_switches,
        timer: PhaseTimer,
        *,
        time_limit: float | None = None,
        mip_rel_gap: float | None = None,
    ):
        """Run P4 (model creation) and P5 (ST solve) under ``timer``.

        Returns ``(solution, routing_or_None, model_stats)``; a backend
        that decides routing itself (the heuristic) returns it directly,
        otherwise P6 extracts paths from the solution.
        """
        ...  # pragma: no cover - protocol

    def build_te_model(
        self, topology, demands, mapping, dependencies, placement,
        stateful_switches=None,
    ):
        """Construct the standing TE model (placement fixed)."""
        ...  # pragma: no cover - protocol

    def solve_te(self, model, *, time_limit: float | None = None):
        """Re-solve a (possibly patched) standing TE model."""
        ...  # pragma: no cover - protocol


class _TERoutingMixin:
    """Shared TE path: the routing-only LP of §6.2 with patch support."""

    def __init__(self):
        self.calls = {"st_solves": 0, "te_model_builds": 0, "te_solves": 0}

    def build_te_model(
        self, topology, demands, mapping, dependencies, placement,
        stateful_switches=None,
    ):
        self.calls["te_model_builds"] += 1
        return build_te_model(
            topology, demands, mapping, dependencies, placement,
            stateful_switches,
        )

    def solve_te(self, model, *, time_limit: float | None = None):
        self.calls["te_solves"] += 1
        return model.solve(time_limit=time_limit)


class MilpBackend(_TERoutingMixin):
    """The exact ST MILP (Table 2) plus the TE LP."""

    name = "milp"

    def solve_st(
        self, topology, demands, mapping, dependencies, stateful_switches,
        timer: PhaseTimer, *, time_limit=None, mip_rel_gap=None,
    ):
        with timer.phase("P4"):
            inputs = PlacementInputs(
                topology, demands, mapping, dependencies, stateful_switches
            )
            model = PlacementModel(inputs)
        stats = {
            "variables": model.model.num_vars,
            "integer_variables": model.model.num_integer_vars,
            "constraints": model.model.num_constraints,
        }
        with timer.phase("P5"):
            solution = model.solve(time_limit=time_limit, mip_rel_gap=mip_rel_gap)
        self.calls["st_solves"] += 1
        return solution, None, stats


class GreedyBackend(_TERoutingMixin):
    """The §6.2.2 placement heuristic; ST routing is stitched shortest
    paths, TE re-optimization stays with the (already fast) LP."""

    name = "greedy"

    def solve_st(
        self, topology, demands, mapping, dependencies, stateful_switches,
        timer: PhaseTimer, *, time_limit=None, mip_rel_gap=None,
    ):
        with timer.phase("P4"):
            pass  # no model to create
        with timer.phase("P5"):
            solution, routing = greedy_solution(
                topology, demands, mapping, dependencies, stateful_switches
            )
        self.calls["st_solves"] += 1
        return solution, routing, {}


#: Registered backend factories, by ``CompilerOptions.solver`` name.
BACKENDS = {
    "milp": MilpBackend,
    "greedy": GreedyBackend,
}


def register_backend(name: str, factory) -> None:
    """Make ``solver=name`` construct ``factory()``."""
    BACKENDS[name] = factory


def get_backend(solver) -> SolverBackend:
    """Resolve a ``CompilerOptions.solver`` spec to a backend instance."""
    if isinstance(solver, str):
        try:
            return BACKENDS[solver]()
        except KeyError:
            known = ", ".join(sorted(BACKENDS))
            raise SnapError(
                f"unknown solver backend {solver!r} (known: {known})"
            ) from None
    if isinstance(solver, SolverBackend):
        return solver
    raise SnapError(
        f"solver must be a backend name or a SolverBackend instance, "
        f"got {solver!r}"
    )
