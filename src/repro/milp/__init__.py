"""Optimization: the ST MILP, TE LP, greedy heuristic, and path extraction."""

from repro.milp.backends import (
    BACKENDS,
    GreedyBackend,
    MilpBackend,
    SolverBackend,
    get_backend,
    register_backend,
)
from repro.milp.heuristic import greedy_placement, greedy_solution
from repro.milp.modeling import Model, Solution, Variable
from repro.milp.placement import (
    PlacementInputs,
    PlacementModel,
    PlacementSolution,
    build_placement_model,
)
from repro.milp.refine import PortSplit, split_port
from repro.milp.results import (
    RoutingPaths,
    decompose_flow,
    extract_paths,
    validate_solution,
)
from repro.milp.te import build_te_model, solve_te

__all__ = [
    "BACKENDS", "GreedyBackend", "MilpBackend", "SolverBackend",
    "get_backend", "register_backend",
    "greedy_placement", "greedy_solution",
    "Model", "Solution", "Variable",
    "PlacementInputs", "PlacementModel", "PlacementSolution",
    "build_placement_model",
    "PortSplit", "split_port",
    "RoutingPaths", "decompose_flow", "extract_paths", "validate_solution",
    "build_te_model", "solve_te",
]
