"""The joint state-placement and routing MILP (§4.4, Tables 1 and 2).

One routing commodity per OBS flow (u, v) with positive demand; binary
placement variables ``P[s, n]``; auxiliary "passed s" flow ``PS`` used to
enforce state-ordering.  Exactly the constraint system of Table 2:

Routing (per flow uv):
    sum_j R[uv, u->j] = 1                       source emits all flow
    sum_i R[uv, i->v] = 1                       sink absorbs all flow
    sum_uv R[uv, ij] * d_uv <= c_ij             link capacity
    sum_i R[uv, i->n] = sum_j R[uv, n->j]       conservation (internal n)
    sum_i R[uv, i->n] <= 1                      visit each node at most once

State:
    sum_n P[s, n] = 1                           each s on exactly one switch
    sum_i R[uv, i->n] >= P[s, n]                flows needing s visit its switch
    P[s, n] = P[t, n]          for (s,t) tied   co-location (same SCC / atomic)
    PS[s, uv, ij] <= R[uv, ij]
    P[s, n] + sum_i PS[s, uv, i->n] = sum_j PS[s, uv, n->j]     "passed s" grows at s's switch
    P[s, v] + sum_i PS[s, uv, i->v] = 1                         all arriving flow passed s
    P[s, n] + sum_i PS[s, uv, i->n] >= P[t, n] for (s,t) in dep  ordering

Objective: minimize total link utilization sum R[uv, ij] * d_uv / c_ij.

``PS`` variables are instantiated for *every* s in S_uv, exactly as in
Table 2.  This is not redundant: without the PS sink constraint, the visit
constraint alone can be satisfied by a circulation disconnected from the
flow's real path (a classic multi-commodity-flow artifact), letting the
solver "fake" the visit.  PS must ride R's edges from s's switch to the
sink, which forces genuine connectivity.  For the same reason a flow may
not transit the virtual port nodes of other OBS ports.
"""

from __future__ import annotations

import math

from repro.analysis.dependency import DependencyInfo
from repro.analysis.packet_state import PacketStateMapping
from repro.lang.errors import PlacementError
from repro.milp.modeling import Model, Solution, Variable
from repro.topology.graph import Topology, port_node


class PlacementInputs:
    """Everything Table 1 lists as MILP input, preprocessed."""

    def __init__(
        self,
        topology: Topology,
        demands: dict,
        mapping: PacketStateMapping,
        dependencies: DependencyInfo,
        stateful_switches=None,
        demand_floor: float = 1e-9,
        state_capacity: dict | int | None = None,
    ):
        self.topology = topology
        self.graph = topology.expanded_graph()
        self.flows = [
            (u, v) for (u, v), demand in sorted(demands.items()) if demand > demand_floor
        ]
        self.demands = {flow: demands[flow] for flow in self.flows}
        self.mapping = mapping
        self.dependencies = dependencies
        self.state_vars = sorted(
            set(mapping.all_state_vars()) | set(dependencies.order)
        )
        self.stateful_switches = tuple(
            stateful_switches if stateful_switches is not None else topology.switches()
        )
        # §7.3 "Resource constraints" extension: cap how many state
        # variables a switch may host (uniform int, or per-switch dict).
        if state_capacity is None:
            self.state_capacity = {}
        elif isinstance(state_capacity, dict):
            self.state_capacity = dict(state_capacity)
        else:
            self.state_capacity = {
                n: int(state_capacity) for n in self.stateful_switches
            }
        self.links = [(a, b) for a, b in self.graph.edges]
        self.capacities = {
            (a, b): data["capacity"] for a, b, data in self.graph.edges(data=True)
        }
        # dep pairs restricted to variables that exist here.
        known = set(self.state_vars)
        self.dep_pairs = sorted(
            (s, t) for s, t in dependencies.dep if s in known and t in known
        )
        self.tied_pairs = sorted(
            tuple(sorted(pair)) for pair in dependencies.tied
            if set(pair) <= known
        )
        #: per flow: the state variables that need PS tracking — every
        #: variable the flow uses (Table 2; see module docstring).
        self.ps_vars: dict = {}
        for flow in self.flows:
            needed = mapping.states_for(*flow)
            self.ps_vars[flow] = sorted(s for s in needed if s in known)
        # Per-flow usable links: a flow may not transit the virtual port
        # nodes of other OBS ports (they are hosts, not switches).
        self._flow_links: dict = {}
        port_nodes = {port_node(p) for p in topology.ports}
        for flow in self.flows:
            own = {port_node(flow[0]), port_node(flow[1])}
            banned = port_nodes - own
            self._flow_links[flow] = [
                (a, b)
                for a, b in self.links
                if a not in banned and b not in banned
            ]

        # Per-flow adjacency over the usable links.
        self._flow_in: dict = {}
        self._flow_out: dict = {}
        for flow in self.flows:
            fin: dict = {}
            fout: dict = {}
            for a, b in self._flow_links[flow]:
                fout.setdefault(a, []).append((a, b))
                fin.setdefault(b, []).append((a, b))
            self._flow_in[flow] = fin
            self._flow_out[flow] = fout

    def flow_links(self, flow):
        return self._flow_links[flow]

    def flow_nodes(self, flow):
        """Graph nodes this flow may touch (excludes foreign port nodes)."""
        own = {port_node(flow[0]), port_node(flow[1])}
        port_nodes = {port_node(p) for p in self.topology.ports}
        banned = port_nodes - own
        return [n for n in self.graph.nodes if n not in banned]

    def in_edges(self, node, flow):
        return self._flow_in[flow].get(node, [])

    def out_edges(self, node, flow):
        return self._flow_out[flow].get(node, [])


class PlacementModel:
    """The built MILP plus variable handles for answer extraction."""

    def __init__(self, inputs: PlacementInputs, fixed_placement: dict | None = None):
        self.inputs = inputs
        self.fixed_placement = (
            dict(fixed_placement) if fixed_placement is not None else None
        )
        self.model = Model("snap-te" if fixed_placement else "snap-st")
        self.route_vars: dict = {}
        self.place_vars: dict = {}
        #: (flow, link) -> original bounds, recorded by :meth:`fail_link`
        #: so :meth:`restore_link` reinstates exactly those.
        self._saved_bounds: dict = {}
        self._build()

    # -- placement value helpers (variable in ST, constant in TE) -----------

    def _p_terms(self, s: str, n: str):
        """(terms, constant) contribution of P[s, n]."""
        if self.fixed_placement is not None:
            return [], 1.0 if self.fixed_placement.get(s) == n else 0.0
        return [(self.place_vars[s, n], 1.0)], 0.0

    def _build(self) -> None:
        inputs = self.inputs
        model = self.model
        if self.fixed_placement is None:
            for s in inputs.state_vars:
                for n in inputs.stateful_switches:
                    self.place_vars[s, n] = model.add_binary(f"P[{s},{n}]")
        else:
            missing = [s for s in inputs.state_vars if s not in self.fixed_placement]
            if missing:
                raise PlacementError(f"fixed placement missing variables {missing}")

        for flow in inputs.flows:
            for link in inputs.flow_links(flow):
                self.route_vars[flow, link] = model.add_var(
                    f"R[{flow},{link}]", 0.0, 1.0
                )

        self._routing_constraints()
        self._placement_constraints()
        self._ordering_constraints()
        self._objective()

    # -- Table 2, left column -------------------------------------------------

    def _routing_constraints(self) -> None:
        inputs = self.inputs
        model = self.model
        for flow in inputs.flows:
            u, v = flow
            src = port_node(u)
            dst = port_node(v)
            model.add_eq(
                [(self.route_vars[flow, e], 1.0) for e in inputs.out_edges(src, flow)],
                1.0,
            )
            model.add_eq(
                [(self.route_vars[flow, e], 1.0) for e in inputs.in_edges(src, flow)],
                0.0,
            )
            model.add_eq(
                [(self.route_vars[flow, e], 1.0) for e in inputs.in_edges(dst, flow)],
                1.0,
            )
            model.add_eq(
                [(self.route_vars[flow, e], 1.0) for e in inputs.out_edges(dst, flow)],
                0.0,
            )
            for n in inputs.flow_nodes(flow):
                if n in (src, dst):
                    continue
                incoming = [
                    (self.route_vars[flow, e], 1.0) for e in inputs.in_edges(n, flow)
                ]
                outgoing = [
                    (self.route_vars[flow, e], -1.0)
                    for e in inputs.out_edges(n, flow)
                ]
                if incoming or outgoing:
                    model.add_eq(incoming + outgoing, 0.0)
                if incoming:
                    model.add_le(incoming, 1.0)
        self.capacity_rows: dict = {}
        for link in inputs.links:
            capacity = inputs.capacities[link]
            if math.isinf(capacity):
                continue
            terms = [
                (self.route_vars[flow, link], inputs.demands[flow])
                for flow in inputs.flows
                if (flow, link) in self.route_vars
            ]
            if terms:
                self.capacity_rows[link] = model.add_le(terms, capacity)

    # -- Table 2, right column: placement ---------------------------------------

    def _placement_constraints(self) -> None:
        inputs = self.inputs
        model = self.model
        if self.fixed_placement is None:
            for s in inputs.state_vars:
                model.add_eq(
                    [(self.place_vars[s, n], 1.0) for n in inputs.stateful_switches],
                    1.0,
                )
            for s, t in inputs.tied_pairs:
                for n in inputs.stateful_switches:
                    model.add_eq(
                        [(self.place_vars[s, n], 1.0), (self.place_vars[t, n], -1.0)],
                        0.0,
                    )
            # Optional switch-memory budget (§7.3 extension).
            for n, capacity in inputs.state_capacity.items():
                if n not in inputs.stateful_switches:
                    continue
                model.add_le(
                    [(self.place_vars[s, n], 1.0) for s in inputs.state_vars],
                    float(capacity),
                )
        # Flows visit the switches of the variables they need.
        known = set(inputs.state_vars)
        for flow in inputs.flows:
            needed = inputs.mapping.states_for(*flow)
            for s in needed:
                if s not in known:
                    continue
                for n in inputs.stateful_switches:
                    p_terms, p_const = self._p_terms(s, n)
                    if not p_terms and p_const == 0.0:
                        continue
                    incoming = [
                        (self.route_vars[flow, e], 1.0)
                        for e in inputs.in_edges(n, flow)
                    ]
                    negated = [(var, -coef) for var, coef in p_terms]
                    model.add_ge(incoming + negated, p_const)

    # -- Table 2, right column: PS flow and ordering ------------------------------

    def _ordering_constraints(self) -> None:
        inputs = self.inputs
        model = self.model
        self.ps_vars_handle: dict = {}
        for flow in inputs.flows:
            tracked = inputs.ps_vars[flow]
            if not tracked:
                continue
            u, v = flow
            src = port_node(u)
            dst = port_node(v)
            needed = inputs.mapping.states_for(u, v)
            for s in tracked:
                ps: dict = {}
                for link in inputs.flow_links(flow):
                    var = model.add_var(f"PS[{s},{flow},{link}]", 0.0, 1.0)
                    ps[link] = var
                    model.add_le(
                        [(var, 1.0), (self.route_vars[flow, link], -1.0)], 0.0
                    )
                self.ps_vars_handle[s, flow] = ps
                # Nothing has passed s when leaving the source.
                model.add_eq(
                    [(ps[e], 1.0) for e in inputs.out_edges(src, flow)], 0.0
                )
                # Everything has passed s when reaching the sink.
                model.add_eq(
                    [(ps[e], 1.0) for e in inputs.in_edges(dst, flow)], 1.0
                )
                # Conservation with injection at s's switch.
                for n in inputs.flow_nodes(flow):
                    if n in (src, dst):
                        continue
                    p_terms, p_const = (
                        self._p_terms(s, n)
                        if n in inputs.stateful_switches
                        else ([], 0.0)
                    )
                    outgoing = [(ps[e], 1.0) for e in inputs.out_edges(n, flow)]
                    incoming = [(ps[e], -1.0) for e in inputs.in_edges(n, flow)]
                    if not outgoing and not incoming and not p_terms:
                        continue
                    model.add_eq(
                        outgoing + incoming + [(v_, -c) for v_, c in p_terms],
                        p_const,
                    )
                # Ordering: at t's switch, flow must already have passed s.
                for s2, t in inputs.dep_pairs:
                    if s2 != s or t not in needed:
                        continue
                    for n in inputs.stateful_switches:
                        pt_terms, pt_const = self._p_terms(t, n)
                        ps_terms, ps_const = self._p_terms(s, n)
                        incoming = [(ps[e], 1.0) for e in inputs.in_edges(n, flow)]
                        lhs = incoming + ps_terms + [(v_, -c) for v_, c in pt_terms]
                        model.add_ge(lhs, pt_const - ps_const)

    def _objective(self) -> None:
        inputs = self.inputs
        terms = []
        for flow in inputs.flows:
            demand = inputs.demands[flow]
            for link in inputs.flow_links(flow):
                capacity = inputs.capacities[link]
                if math.isinf(capacity):
                    continue
                terms.append((self.route_vars[flow, link], demand / capacity))
        self.model.minimize(terms)

    # -- incremental updates (§6.2.2) ---------------------------------------------

    def fail_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Take a link out of service by pinning its routing variables to 0.

        This is the paper's "incremental modification" path: the standing
        model is patched in O(flows) time instead of being rebuilt.
        PS variables follow automatically through ``PS <= R``.

        The variables' original bounds are recorded (once — repeated
        failures of the same link don't overwrite them with the pinned
        zeros) so :meth:`restore_link` can reinstate exactly what the
        model had before, making fail/restore cycles idempotent.
        """
        saved = self._saved_bounds
        links = [(a, b)] + ([(b, a)] if bidirectional else [])
        for link in links:
            for flow in self.inputs.flows:
                var = self.route_vars.get((flow, link))
                if var is not None:
                    if (flow, link) not in saved:
                        saved[(flow, link)] = (var.lower, var.upper)
                    self.model.set_var_bounds(var, 0.0, 0.0)

    def restore_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Undo :meth:`fail_link`, restoring the recorded original bounds.

        A no-op for links that were never failed: restoring such a link
        must not touch bounds the model never changed.
        """
        saved = self._saved_bounds
        links = [(a, b)] + ([(b, a)] if bidirectional else [])
        for link in links:
            for flow in self.inputs.flows:
                bounds = saved.pop((flow, link), None)
                if bounds is None:
                    continue
                var = self.route_vars.get((flow, link))
                if var is not None:
                    self.model.set_var_bounds(var, *bounds)

    def set_demands(self, new_demands: dict) -> None:
        """Patch the traffic matrix in place (same flow set required).

        Updates the demand coefficients in every capacity row and in the
        objective, without regenerating the model.
        """
        missing = [f for f in self.inputs.flows if new_demands.get(f, 0.0) <= 0.0]
        extra = [
            f for f, d in new_demands.items()
            if d > 0.0 and f not in set(self.inputs.flows)
        ]
        if missing or extra:
            raise PlacementError(
                "incremental demand update requires the same flow set "
                f"(missing={missing[:3]}, extra={extra[:3]}); rebuild instead"
            )
        self.inputs.demands = {f: float(new_demands[f]) for f in self.inputs.flows}
        inputs = self.inputs
        for link, row in self.capacity_rows.items():
            terms = [
                (self.route_vars[flow, link], inputs.demands[flow])
                for flow in inputs.flows
                if (flow, link) in self.route_vars
            ]
            self.model.set_row_terms(row, terms)
        self._objective()

    # -- solving -----------------------------------------------------------------

    def solve(self, time_limit: float | None = None, mip_rel_gap: float | None = None):
        solution = self.model.solve(time_limit=time_limit, mip_rel_gap=mip_rel_gap)
        placement = self._extract_placement(solution)
        routing = self._extract_routing(solution)
        return PlacementSolution(
            placement=placement,
            routing=routing,
            objective=solution.objective,
            inputs=self.inputs,
        )

    def _extract_placement(self, solution: Solution) -> dict:
        if self.fixed_placement is not None:
            return dict(self.fixed_placement)
        placement = {}
        for s in self.inputs.state_vars:
            best, best_val = None, -1.0
            for n in self.inputs.stateful_switches:
                val = solution[self.place_vars[s, n]]
                if val > best_val:
                    best, best_val = n, val
            if best is None or best_val < 0.5:
                raise PlacementError(f"no placement chosen for {s!r}")
            placement[s] = best
        return placement

    def _extract_routing(self, solution: Solution) -> dict:
        routing: dict = {}
        for flow in self.inputs.flows:
            fractions = {}
            for link in self.inputs.flow_links(flow):
                val = solution[self.route_vars[flow, link]]
                if val > 1e-6:
                    fractions[link] = val
            routing[flow] = fractions
        return routing


class PlacementSolution:
    """Placement + per-flow link fractions; see results.py for paths."""

    def __init__(self, placement: dict, routing: dict, objective: float, inputs):
        self.placement = placement
        self.routing = routing
        self.objective = objective
        self.inputs = inputs

    def __repr__(self):
        return (
            f"PlacementSolution(placement={self.placement}, "
            f"objective={self.objective:.4f}, flows={len(self.routing)})"
        )


def build_placement_model(
    topology: Topology,
    demands: dict,
    mapping: PacketStateMapping,
    dependencies: DependencyInfo,
    stateful_switches=None,
    state_capacity=None,
) -> PlacementModel:
    """Phase P4 for the ST problem: construct (but do not solve) the MILP."""
    inputs = PlacementInputs(
        topology,
        demands,
        mapping,
        dependencies,
        stateful_switches,
        state_capacity=state_capacity,
    )
    return PlacementModel(inputs)
