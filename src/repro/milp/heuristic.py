"""Greedy placement heuristic (§6.2.2: "if the user settles for a
sub-optimal state placement using heuristics rather than ST MILP ...
We plan to explore such heuristics").

Tied groups are placed together.  Variables are placed in dependency
order; each (group of) variable(s) goes to the switch minimizing the total
demand-weighted detour of the flows that need it, assuming flows travel
along shortest paths threaded through the state switches chosen so far.
After placement, routing can be refined with the TE LP, or used directly
via shortest-path stitching.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.dependency import DependencyInfo
from repro.analysis.packet_state import PacketStateMapping
from repro.milp.placement import PlacementSolution, PlacementInputs
from repro.milp.results import RoutingPaths, _state_sequence, _stitch_path
from repro.topology.graph import Topology


def _placement_groups(dependencies: DependencyInfo, state_vars):
    """Tied variables merged into groups, ordered by dependency rank."""
    groups: list[list[str]] = []
    assigned: dict[str, int] = {}
    for var in sorted(state_vars, key=lambda s: (dependencies.state_rank.get(s, 0), s)):
        if var in assigned:
            continue
        group = [var]
        assigned[var] = len(groups)
        for pair in dependencies.tied:
            if var in pair:
                for other in pair:
                    if other not in assigned and other in state_vars:
                        group.append(other)
                        assigned[other] = len(groups)
        groups.append(group)
    return groups


def greedy_placement(
    topology: Topology,
    demands: dict,
    mapping: PacketStateMapping,
    dependencies: DependencyInfo,
    stateful_switches=None,
) -> dict:
    """Choose a switch for every state variable; returns {var: switch}."""
    candidates = list(stateful_switches or topology.switches())
    state_vars = sorted(set(mapping.all_state_vars()) | set(dependencies.order))
    distance = dict(nx.all_pairs_shortest_path_length(topology.graph))
    placement: dict[str, str] = {}

    def flow_cost(flow, extra_switch):
        """Hop length of u -> placed-states -> extra -> v (approximation)."""
        u, v = flow
        sequence = [topology.port_switch(u)]
        for s in dependencies.order:
            if s in mapping.states_for(u, v) and s in placement:
                if placement[s] not in sequence:
                    sequence.append(placement[s])
        if extra_switch not in sequence:
            sequence.append(extra_switch)
        sequence.append(topology.port_switch(v))
        cost = 0
        for a, b in zip(sequence, sequence[1:]):
            cost += distance[a].get(b, len(distance) * 2)
        return cost

    for group in _placement_groups(dependencies, state_vars):
        flows = set()
        for var in group:
            flows.update(mapping.pairs_needing(var))
        flows = sorted(f for f in flows if demands.get(f, 0.0) > 0.0)
        best, best_cost = None, float("inf")
        for candidate in candidates:
            cost = sum(demands[f] * flow_cost(f, candidate) for f in flows)
            if cost < best_cost:
                best, best_cost = candidate, cost
        chosen = best if best is not None else candidates[0]
        for var in group:
            placement[var] = chosen
    return placement


def greedy_solution(
    topology: Topology,
    demands: dict,
    mapping: PacketStateMapping,
    dependencies: DependencyInfo,
    stateful_switches=None,
):
    """Full heuristic result: placement + stitched shortest paths."""
    placement = greedy_placement(
        topology, demands, mapping, dependencies, stateful_switches
    )
    paths = {}
    objective = 0.0
    for flow, demand in sorted(demands.items()):
        if demand <= 0.0:
            continue
        u, v = flow
        required = _state_sequence(flow, mapping, dependencies, placement)
        waypoints = [topology.port_switch(u)] + required + [topology.port_switch(v)]
        path = _stitch_path(topology.graph, waypoints)
        paths[flow] = path
        for a, b in zip(path, path[1:]):
            objective += demand / topology.capacity(a, b)
    routing = RoutingPaths(paths, placement)
    inputs = PlacementInputs(topology, demands, mapping, dependencies, stateful_switches)
    solution = PlacementSolution(placement, {}, objective, inputs)
    return solution, routing
