"""A small MILP modeling layer over ``scipy.optimize.milp`` (HiGHS).

The paper uses the Gurobi Python API; offline we provide the minimal
equivalent: named variables, linear expressions, ==/<=/>= constraints,
and a minimize objective, compiled to the sparse matrix form HiGHS wants.

Kept intentionally lean — constraint rows are plain ``(var, coef)`` lists
to make building the ~10^5-row placement programs fast.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.lang.errors import PlacementError


class Variable:
    """A model variable; use ``solution[var]`` to read its value."""

    __slots__ = ("index", "name", "lower", "upper", "integer")

    def __init__(self, index: int, name: str, lower: float, upper: float, integer: bool):
        self.index = index
        self.name = name
        self.lower = lower
        self.upper = upper
        self.integer = integer

    def __repr__(self):
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name}, {kind}, [{self.lower}, {self.upper}])"


class Solution:
    """Solved variable values plus objective and solver status."""

    def __init__(self, values: np.ndarray, objective: float, status: int, message: str):
        self._values = values
        self.objective = objective
        self.status = status
        self.message = message

    def __getitem__(self, var: Variable) -> float:
        return float(self._values[var.index])

    def value_array(self) -> np.ndarray:
        return self._values


class Model:
    """An LP/MILP under construction."""

    def __init__(self, name: str = "model"):
        self.name = name
        self._vars: list[Variable] = []
        self._rows: list[tuple] = []  # (terms, lower, upper)
        self._objective: list[tuple] = []

    # -- variables ----------------------------------------------------------

    def add_var(
        self,
        name: str = "",
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
    ) -> Variable:
        var = Variable(len(self._vars), name or f"x{len(self._vars)}", lower, upper, integer)
        self._vars.append(var)
        return var

    def add_binary(self, name: str = "") -> Variable:
        return self.add_var(name, 0.0, 1.0, integer=True)

    # -- constraints ----------------------------------------------------------

    def add_constraint(self, terms, lower: float, upper: float) -> int:
        """``lower <= sum(coef * var) <= upper`` with terms ``(var, coef)``.

        Returns the row index, usable with :meth:`set_row_bounds` and
        :meth:`set_row_terms` for incremental model updates.
        """
        self._rows.append((tuple(terms), float(lower), float(upper)))
        return len(self._rows) - 1

    # -- incremental updates (§6.2.2: "incremental additions and
    # modifications of variables and constraints in a few milliseconds") --

    def set_row_bounds(self, row: int, lower: float, upper: float) -> None:
        terms, _, _ = self._rows[row]
        self._rows[row] = (terms, float(lower), float(upper))

    def set_row_terms(self, row: int, terms) -> None:
        _, lower, upper = self._rows[row]
        self._rows[row] = (tuple(terms), lower, upper)

    def set_var_bounds(self, var: Variable, lower: float, upper: float) -> None:
        var.lower = float(lower)
        var.upper = float(upper)

    def add_eq(self, terms, rhs: float) -> int:
        return self.add_constraint(terms, rhs, rhs)

    def add_le(self, terms, rhs: float) -> int:
        return self.add_constraint(terms, -np.inf, rhs)

    def add_ge(self, terms, rhs: float) -> int:
        return self.add_constraint(terms, rhs, np.inf)

    def minimize(self, terms) -> None:
        """Set the objective to ``sum(coef * var)`` (minimization)."""
        self._objective = list(terms)

    # -- stats ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self._vars if v.integer)

    # -- solving ----------------------------------------------------------------

    def solve(self, time_limit: float | None = None, mip_rel_gap: float | None = None) -> Solution:
        n = len(self._vars)
        cost = np.zeros(n)
        for var, coef in self._objective:
            cost[var.index] += coef

        row_idx, col_idx, data = [], [], []
        lo = np.empty(len(self._rows))
        hi = np.empty(len(self._rows))
        for r, (terms, lower, upper) in enumerate(self._rows):
            lo[r] = lower
            hi[r] = upper
            for var, coef in terms:
                row_idx.append(r)
                col_idx.append(var.index)
                data.append(coef)
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(self._rows), n)
        )
        constraints = LinearConstraint(matrix, lo, hi)
        bounds = Bounds(
            np.array([v.lower for v in self._vars]),
            np.array([v.upper for v in self._vars]),
        )
        integrality = np.array([1 if v.integer else 0 for v in self._vars])
        options = {}
        if time_limit is not None:
            options["time_limit"] = time_limit
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = mip_rel_gap
        result = milp(
            c=cost,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )
        if result.x is None:
            raise PlacementError(
                f"{self.name}: solver failed (status={result.status}): {result.message}"
            )
        return Solution(result.x, float(result.fun), int(result.status), result.message)

    def __repr__(self):
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"({self.num_integer_vars} int), rows={self.num_constraints})"
        )
