"""Turning MILP link fractions into concrete forwarding paths.

The prototype "chooses the same path for the traffic between the same
ports" (§4.4), so after solving we decompose each flow's fractional edge
values into paths and install the heaviest one.  Every decomposed path
provably visits every switch holding a state variable the flow needs (the
visit constraint forces *all* flow through those switches); the rare
shared-node decomposition artifact that breaks state *ordering* is
repaired by re-stitching the path through the state switches in
dependency order.
"""

from __future__ import annotations

import networkx as nx

from repro.lang.errors import PlacementError
from repro.topology.graph import Topology, port_node


def decompose_flow(fractions: dict, source: str, sink: str):
    """Decompose edge fractions into simple paths with weights.

    Standard flow decomposition: repeatedly find a source->sink path over
    positive-residual edges (BFS — flow conservation guarantees one exists
    while residual flow remains), subtract the bottleneck.  Returns a list
    of ``(path_nodes, weight)`` sorted by descending weight.
    """
    residual = {e: f for e, f in fractions.items() if f > 1e-9}
    paths = []
    for _ in range(1000):
        adjacency: dict = {}
        for (i, j), f in residual.items():
            adjacency.setdefault(i, []).append(j)
        parent = {source: None}
        frontier = [source]
        while frontier and sink not in parent:
            nxt = []
            for node in frontier:
                for neighbour in adjacency.get(node, ()):
                    if neighbour not in parent:
                        parent[neighbour] = node
                        nxt.append(neighbour)
            frontier = nxt
        if sink not in parent:
            break
        path = [sink]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        path.reverse()
        bottleneck = min(residual[(a, b)] for a, b in zip(path, path[1:]))
        for a, b in zip(path, path[1:]):
            residual[(a, b)] -= bottleneck
            if residual[(a, b)] <= 1e-9:
                del residual[(a, b)]
        paths.append((tuple(path), bottleneck))
        if not residual:
            break
    paths.sort(key=lambda p: -p[1])
    return paths


def _state_sequence(flow, mapping, dependencies, placement):
    """The switches a flow must visit, in dependency order."""
    needed = mapping.states_for(*flow)
    ordered_vars = [s for s in dependencies.order if s in needed]
    ordered_vars += sorted(needed - set(ordered_vars))
    switches = []
    for s in ordered_vars:
        n = placement[s]
        if n not in switches:
            switches.append(n)
    return switches


def _path_respects_order(path, required_switches) -> bool:
    positions = []
    for switch in required_switches:
        try:
            positions.append(path.index(switch))
        except ValueError:
            return False
    return positions == sorted(positions)


def _stitch_path(graph: nx.DiGraph, waypoints):
    """Shortest-path concatenation through the waypoint sequence.

    The concatenation may revisit nodes; loops that contain no waypoint
    are excised so the result stays a simple path (required by the
    per-(u, v) match-action next-hop tables).
    """
    full = [waypoints[0]]
    for a, b in zip(waypoints, waypoints[1:]):
        if a == b:
            continue
        try:
            segment = nx.shortest_path(graph, a, b)
        except nx.NetworkXNoPath:
            raise PlacementError(f"no path between waypoints {a!r} and {b!r}")
        full.extend(segment[1:])
    required = set(waypoints)
    simplified: list = []
    position: dict = {}
    for node in full:
        if node in position:
            start = position[node]
            loop = simplified[start + 1 :]
            if any(x in required for x in loop):
                raise PlacementError(
                    f"cannot realize a simple path through waypoints {waypoints}"
                )
            for dropped in loop:
                del position[dropped]
            del simplified[start + 1 :]
        else:
            position[node] = len(simplified)
            simplified.append(node)
    return tuple(simplified)


class RoutingPaths:
    """Installed (single) path per OBS flow, switch-level."""

    def __init__(self, paths: dict, placement: dict):
        #: (u, v) -> tuple of switch names, ingress switch first.
        self.paths = paths
        self.placement = placement

    def path(self, u, v):
        return self.paths.get((u, v))

    def next_hop(self, u, v, current: str):
        """The switch after ``current`` on the (u, v) path, or None at end."""
        path = self.paths.get((u, v))
        if path is None or current not in path:
            return None
        idx = path.index(current)
        return path[idx + 1] if idx + 1 < len(path) else None

    def link_loads(self, demands: dict) -> dict:
        loads: dict = {}
        for flow, path in self.paths.items():
            demand = demands.get(flow, 0.0)
            for a, b in zip(path, path[1:]):
                loads[(a, b)] = loads.get((a, b), 0.0) + demand
        return loads

    def __repr__(self):
        return f"RoutingPaths({len(self.paths)} flows)"


def extract_paths(solution, topology: Topology, mapping, dependencies) -> RoutingPaths:
    """Primary switch-level path per flow, with ordering repair."""
    paths: dict = {}
    for flow, fractions in solution.routing.items():
        u, v = flow
        decomposed = decompose_flow(fractions, port_node(u), port_node(v))
        required = _state_sequence(flow, mapping, dependencies, solution.placement)
        chosen = None
        for candidate, _weight in decomposed:
            switch_path = tuple(n for n in candidate if not n.startswith("port:"))
            if _path_respects_order(list(switch_path), required):
                chosen = switch_path
                break
        if chosen is None:
            # Decomposition artifact (or no decomposition): stitch through
            # the required switches with shortest segments.
            waypoints = [topology.port_switch(u)] + required + [topology.port_switch(v)]
            chosen = _stitch_path(topology.graph, waypoints)
        paths[flow] = chosen
    return RoutingPaths(paths, solution.placement)


def validate_solution(
    routing: RoutingPaths, topology: Topology, mapping, dependencies
) -> None:
    """Assert every installed path visits its state switches in order."""
    for (u, v), path in routing.paths.items():
        required = _state_sequence((u, v), mapping, dependencies, routing.placement)
        if not _path_respects_order(list(path), required):
            raise PlacementError(
                f"flow {(u, v)} path {path} misses/misorders state switches "
                f"{required}"
            )
        if path[0] != topology.port_switch(u) or path[-1] != topology.port_switch(v):
            raise PlacementError(f"flow {(u, v)} path endpoints wrong: {path}")
        for a, b in zip(path, path[1:]):
            topology.capacity(a, b)  # raises if the link does not exist
