"""repro — a reproduction of SNAP (SIGCOMM 2016).

SNAP: Stateful Network-Wide Abstractions for Packet Processing.
Arashloo, Koral, Greenberg, Rexford, Walker.

Public API highlights::

    from repro import SnapController, Program, campus_topology
    from repro.apps import dns_tunnel_detect, assign_egress

    program = Program.from_source(source, assumption=...)
    controller = SnapController(campus_topology(), program)

    snap = controller.submit()           # cold start: placement+routing+rules
    network = controller.network()       # live simulated data plane

    snap = controller.update_policy(p2)  # recompile; network() hot-swapped,
                                         # state-store contents carried over
    snap = controller.fail_link("C1", "C5")   # standing TE model re-solved
    snap = controller.restore_link("C1", "C5")
    snap = controller.set_demands(matrix)

Each event returns an immutable, generation-numbered ``Snapshot``.
``Compiler`` (``cold_start`` / ``policy_change`` / ``topology_change``)
remains as a deprecated shim over the controller; see ``docs/api.md``
for the lifecycle and the migration guide, and README.md for a tour.
"""

__version__ = "1.1.0"

from repro.core import (  # noqa: F401
    CompilationResult,
    Compiler,
    CompilerOptions,
    Program,
    Snapshot,
    SnapController,
)
from repro.lang import (  # noqa: F401
    Packet,
    Store,
    make_packet,
    parse,
    parse_predicate,
    pretty,
    run,
    run_sequence,
)
from repro.topology import (  # noqa: F401
    Topology,
    campus_topology,
    gravity_traffic_matrix,
    igen_topology,
    table5_topology,
)
