"""repro — a reproduction of SNAP (SIGCOMM 2016).

SNAP: Stateful Network-Wide Abstractions for Packet Processing.
Arashloo, Koral, Greenberg, Rexford, Walker.

Public API highlights::

    from repro import Compiler, Program, campus_topology
    from repro.apps import dns_tunnel_detect, assign_egress

    program = Program.from_source(source, assumption=...)
    compiler = Compiler(campus_topology(), program)
    result = compiler.cold_start()     # placement + routing + rules
    network = result.build_network()   # simulated distributed data plane

See README.md for a guided tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.core import CompilationResult, Compiler, Program  # noqa: F401
from repro.lang import (  # noqa: F401
    Packet,
    Store,
    make_packet,
    parse,
    parse_predicate,
    pretty,
    run,
    run_sequence,
)
from repro.topology import (  # noqa: F401
    Topology,
    campus_topology,
    gravity_traffic_matrix,
    igen_topology,
    table5_topology,
)
