"""Pretty-printer: AST back to the paper's concrete syntax.

``parse(pretty(p))`` returns a policy structurally equal to ``p`` — a
round-trip property the test suite checks with hypothesis-generated
policies.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, IPPrefix):
        return str(value)
    if isinstance(value, Symbol):
        return value.name
    if isinstance(value, str):
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(value, tuple):
        return "(" + ", ".join(_format_value(item) for item in value) + ")"
    return str(value)


def _format_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Field):
        return expr.name
    if isinstance(expr, ast.Value):
        return _format_value(expr.value)
    if isinstance(expr, ast.Vector):
        return "][".join(_format_expr(item) for item in expr.items)
    raise TypeError(f"not an expression: {expr!r}")


def _index_text(index: ast.Expr) -> str:
    """Render an index expression as ``[a][b]...``."""
    if isinstance(index, ast.Vector):
        return "".join(f"[{_format_expr(item)}]" for item in index.items)
    return f"[{_format_expr(index)}]"


# Precedence levels: higher binds tighter.
_PAR, _SEQ, _ATOM = 0, 1, 2
_OR, _AND, _NOT = 0, 1, 2


def _pred(pred: ast.Predicate, level: int) -> str:
    if isinstance(pred, ast.Id):
        return "id"
    if isinstance(pred, ast.Drop):
        return "drop"
    if isinstance(pred, ast.Test):
        return f"{pred.field} = {_format_value(pred.value)}"
    if isinstance(pred, ast.StateTest):
        return f"{pred.var}{_index_text(pred.index)} = {_format_expr(pred.value)}"
    if isinstance(pred, ast.Not):
        inner = _pred(pred.pred, _NOT)
        return f"!{inner}"
    if isinstance(pred, ast.And):
        text = f"{_pred(pred.left, _AND)} & {_pred(pred.right, _AND + 1)}"
        return f"({text})" if level > _AND else text
    if isinstance(pred, ast.Or):
        text = f"{_pred(pred.left, _OR)} | {_pred(pred.right, _OR + 1)}"
        return f"({text})" if level > _OR else text
    raise TypeError(f"not a predicate: {pred!r}")


def _pol(policy: ast.Policy, level: int) -> str:
    if isinstance(policy, ast.Predicate):
        text = _pred(policy, _NOT if level >= _ATOM else _OR)
        return f"({text})" if level >= _ATOM and isinstance(policy, (ast.And, ast.Or)) else text
    if isinstance(policy, ast.Mod):
        return f"{policy.field} <- {_format_value(policy.value)}"
    if isinstance(policy, ast.StateMod):
        return f"{policy.var}{_index_text(policy.index)} <- {_format_expr(policy.value)}"
    if isinstance(policy, ast.StateIncr):
        return f"{policy.var}{_index_text(policy.index)}++"
    if isinstance(policy, ast.StateDecr):
        return f"{policy.var}{_index_text(policy.index)}--"
    if isinstance(policy, ast.Parallel):
        text = f"{_pol(policy.left, _PAR)} + {_pol(policy.right, _PAR + 1)}"
        return f"({text})" if level > _PAR else text
    if isinstance(policy, ast.Seq):
        text = f"{_pol(policy.left, _SEQ)}; {_pol(policy.right, _SEQ + 1)}"
        return f"({text})" if level > _SEQ else text
    if isinstance(policy, ast.If):
        pred = _pred(policy.pred, _OR)
        then = _pol(policy.then, _PAR)
        orelse = _pol(policy.orelse, _ATOM)
        text = f"if {pred} then ({then}) else ({orelse})"
        return text
    if isinstance(policy, ast.Atomic):
        return f"atomic({_pol(policy.body, _PAR)})"
    raise TypeError(f"not a policy: {policy!r}")


def pretty(policy: ast.Policy) -> str:
    """Render a policy in the paper's concrete syntax."""
    return _pol(policy, _PAR)
