"""The global state store.

§3: "the program state is a dictionary that maps state variables to their
contents.  The contents of each state variable is itself a mapping from
values to values."  §7.1 describes data-plane realizations (pre-allocated
arrays for dense keys, reactively-populated tables for sparse ones); our
:class:`StateVariable` is the sparse-table realization with a per-variable
default value, which subsumes the dense case.
"""

from __future__ import annotations

from repro.lang.errors import SnapError


class StateVariable:
    """One persistent array ``s[index] -> value`` with a default value.

    Keys are value vectors (tuples) — ``orphan[dstip][dns.rdata]`` indexes
    with a 2-vector.  Reading an absent key yields ``default`` (0 for
    counters, False for flags), matching how a switch would initialise a
    register array.
    """

    __slots__ = ("name", "default", "_table")

    def __init__(self, name: str, default=False):
        self.name = name
        self.default = default
        self._table: dict[tuple, object] = {}

    def get(self, key: tuple):
        return self._table.get(key, self.default)

    def set(self, key: tuple, value) -> None:
        self._table[key] = value

    def increment(self, key: tuple, delta: int = 1) -> None:
        current = self._table.get(key, self.default)
        if current is None:
            current = 0
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise SnapError(
                f"state variable {self.name!r} holds non-numeric value "
                f"{current!r}; cannot increment"
            )
        self._table[key] = current + delta

    def items(self):
        return self._table.items()

    def snapshot(self) -> dict:
        return dict(self._table)

    def copy(self) -> "StateVariable":
        dup = StateVariable(self.name, self.default)
        dup._table = dict(self._table)
        return dup

    def __eq__(self, other):
        if not isinstance(other, StateVariable):
            return NotImplemented
        if self.name != other.name:
            return False
        keys = set(self._table) | set(other._table)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self):  # pragma: no cover - mutable, identity hashing only
        return id(self)

    def __len__(self):
        return len(self._table)

    def __repr__(self):
        return f"StateVariable({self.name!r}, entries={len(self._table)})"


class Store:
    """The full network state: a dictionary of :class:`StateVariable`.

    Unknown variables are created on first access with the default supplied
    by the program's state-variable declarations (see
    :meth:`declare_defaults`), or ``False`` if undeclared.
    """

    def __init__(self, defaults: dict | None = None):
        self._vars: dict[str, StateVariable] = {}
        self._defaults: dict[str, object] = dict(defaults or {})

    def declare_defaults(self, defaults: dict) -> None:
        """Record default values (variable name -> default)."""
        for name, default in defaults.items():
            self._defaults[name] = default
            if name in self._vars and len(self._vars[name]) == 0:
                self._vars[name].default = default

    def variable(self, name: str) -> StateVariable:
        var = self._vars.get(name)
        if var is None:
            var = StateVariable(name, self._defaults.get(name, False))
            self._vars[name] = var
        return var

    def read(self, name: str, key: tuple):
        return self.variable(name).get(key)

    def write(self, name: str, key: tuple, value) -> None:
        self.variable(name).set(key, value)

    def names(self):
        return tuple(self._vars)

    def copy(self) -> "Store":
        dup = Store(self._defaults)
        dup._vars = {name: var.copy() for name, var in self._vars.items()}
        return dup

    def __eq__(self, other):
        if not isinstance(other, Store):
            return NotImplemented
        names = set(self._vars) | set(other._vars)
        return all(self.variable(n) == other.variable(n) for n in names)

    def __hash__(self):  # pragma: no cover - mutable, identity hashing only
        return id(self)

    def __repr__(self):
        return f"Store({', '.join(sorted(self._vars)) or 'empty'})"
