"""Immutable packets.

A packet is a finite mapping from field names to values.  ``eval``
(Appendix A) treats packets functionally — ``pkt[f -> v]`` builds a new
packet — so :class:`Packet` is immutable and hashable, making it usable in
the sets of packets that ``eval`` returns.
"""

from __future__ import annotations

from repro.lang.errors import SnapError


class Packet:
    """An immutable field->value mapping.

    Missing fields read as ``None`` (the "absent" value); a test against an
    absent field simply fails, mirroring a parser that did not populate the
    field for this packet.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields=None, **kwargs):
        merged = dict(fields or {})
        merged.update(kwargs)
        self._fields = merged
        self._hash = None

    def get(self, field: str):
        # The data-plane fast path (dataplane/netasm.py lowered closures,
        # Network._forward) reads self._fields.get(...) directly for speed;
        # any semantics added here must be mirrored there.
        return self._fields.get(field)

    def __getitem__(self, field: str):
        return self._fields.get(field)

    def __contains__(self, field: str) -> bool:
        return field in self._fields and self._fields[field] is not None

    def modify(self, field: str, value) -> "Packet":
        """Functional update: a new packet with ``field`` set to ``value``."""
        updated = dict(self._fields)
        updated[field] = value
        return Packet(updated)

    def modify_many(self, assignments: dict) -> "Packet":
        if not assignments:
            return self
        updated = dict(self._fields)
        updated.update(assignments)
        return Packet(updated)

    def without(self, *fields: str) -> "Packet":
        """A new packet with the given fields removed (SNAP-header strip)."""
        updated = {k: v for k, v in self._fields.items() if k not in fields}
        return Packet(updated)

    def fields(self):
        return dict(self._fields)

    def __eq__(self, other):
        if not isinstance(other, Packet):
            return NotImplemented
        # Absent and None-valued fields are indistinguishable.
        keys = set(self._fields) | set(other._fields)
        return all(self._fields.get(k) == other._fields.get(k) for k in keys)

    def __reduce__(self):
        # The cached hash must never cross an interpreter boundary:
        # string hashing is PYTHONHASHSEED-randomized per process, so a
        # hash computed in a worker daemon (or a spawn-started pool
        # worker) would poison hash containers here.  Rehash on arrival.
        return (Packet, (self._fields,))

    def __hash__(self):
        if self._hash is None:
            items = tuple(
                sorted((k, v) for k, v in self._fields.items() if v is not None)
            )
            self._hash = hash(items)
        return self._hash

    def __repr__(self):
        inner = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self._fields.items()) if v is not None
        )
        return f"Packet({inner})"


def make_packet(**kwargs) -> Packet:
    """Convenience constructor; field names are canonicalized to lowercase
    (matching the parser's case-insensitive treatment of fields)."""
    if any(not isinstance(key, str) for key in kwargs):
        raise SnapError("packet field names must be strings")
    return Packet({key.lower(): value for key, value in kwargs.items()})
