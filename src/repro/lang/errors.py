"""Exception hierarchy for the SNAP reproduction.

The paper distinguishes *compile errors* (e.g. parallel write/write races,
§3) from *semantic undefinedness* (eval returning ⊥, Appendix A).  Both are
surfaced as exceptions; ``InconsistentStateError`` corresponds to ⊥.
"""


class SnapError(Exception):
    """Base class for every error raised by this library."""


class ParseError(SnapError):
    """The concrete-syntax parser rejected the program text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = "" if line is None else f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CompileError(SnapError):
    """The compiler rejected the program (e.g. a state race condition)."""


class RaceConditionError(CompileError):
    """Parallel composition produced a read/write or write/write conflict."""


class InconsistentStateError(SnapError):
    """eval() hit the undefined case ⊥ of the semantics (Appendix A)."""


class PlacementError(SnapError):
    """The MILP was infeasible or produced an unusable placement."""


class DataPlaneError(SnapError):
    """The distributed data-plane realization misbehaved."""


class TopologyError(SnapError):
    """A topology was malformed (no capacity, unknown port, ...)."""
