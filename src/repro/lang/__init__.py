"""The SNAP language: AST, parser, packets, state, and reference semantics."""

from repro.lang.ast import (
    And,
    Atomic,
    Drop,
    Field,
    If,
    Id,
    Mod,
    Not,
    Or,
    Parallel,
    Policy,
    Predicate,
    Seq,
    StateDecr,
    StateIncr,
    StateMod,
    StateTest,
    Test,
    Value,
    Vector,
    infer_state_defaults,
    match_all,
    par_all,
    seq_all,
    state_reads,
    state_variables,
    state_writes,
)
from repro.lang.errors import (
    CompileError,
    InconsistentStateError,
    ParseError,
    RaceConditionError,
    SnapError,
)
from repro.lang.fields import DEFAULT_REGISTRY, FieldRegistry
from repro.lang.packet import Packet, make_packet
from repro.lang.parser import parse, parse_predicate
from repro.lang.pretty import pretty
from repro.lang.semantics import Log, eval_policy, run, run_sequence
from repro.lang.state import StateVariable, Store
from repro.lang.values import Symbol

__all__ = [
    "And", "Atomic", "Drop", "Field", "If", "Id", "Mod", "Not", "Or",
    "Parallel", "Policy", "Predicate", "Seq", "StateDecr", "StateIncr",
    "StateMod", "StateTest", "Test", "Value", "Vector",
    "infer_state_defaults", "match_all", "par_all", "seq_all",
    "state_reads", "state_variables", "state_writes",
    "CompileError", "InconsistentStateError", "ParseError",
    "RaceConditionError", "SnapError",
    "DEFAULT_REGISTRY", "FieldRegistry",
    "Packet", "make_packet", "parse", "parse_predicate", "pretty",
    "Log", "eval_policy", "run", "run_sequence",
    "StateVariable", "Store", "Symbol",
]
