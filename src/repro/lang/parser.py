"""Parser for SNAP's concrete syntax (Figure 1 / Appendix F notation).

Accepted grammar (prec: ``+`` < ``;`` < statement; ``|`` < ``&`` < ``!``)::

    policy  := seq ('+' seq)*
    seq     := stmt (';' stmt)*
    stmt    := 'if' pred 'then' policy 'else' stmt
             | 'atomic' '(' policy ')'
             | '(' policy ')'                      -- may continue as pred
             | '!' predicate ...
             | NAME indices? ('<-' expr | '++' | '--' | '=' expr)?
    pred    := andp ('|' andp)*
    andp    := unary ('&' unary)*
    unary   := '!' unary | '(' pred ')' | 'id' | 'drop' | test
    test    := NAME indices? ('=' expr)?           -- bare state ref = True

Identifier resolution: a bare name with no index is, in order, a *binding*
from ``definitions`` (a named sub-policy such as ``assign-egress``), a
*parameter* from ``params`` (e.g. ``threshold``), a known *field*, or a
:class:`Symbol` constant.  A name with indices is a state variable.

``#`` and ``//`` start comments.  The notation follows the paper exactly,
including hyphenated identifiers (``susp-client``), dotted protocol fields
(``dns.rdata``), IP prefixes, and the ``s[e]`` boolean sugar.
"""

from __future__ import annotations

import re

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.fields import DEFAULT_REGISTRY, FieldRegistry
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<ip>\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}(/\d{1,2})?)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow><-)
  | (?P<incr>\+\+)
  | (?P<decr>--)
  | (?P<op>[=;+&|!()\[\],])
  | (?P<neg>¬)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*(?:[.-][A-Za-z0-9_]+)*)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(["if", "then", "else", "id", "drop", "atomic", "True", "False", "not"])


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str):
    tokens = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, column)
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
            if "\n" in text:
                line_start = match.start() + text.rindex("\n") + 1
        else:
            column = match.start() - line_start + 1
            if kind == "name" and text in _KEYWORDS:
                kind = text if text not in ("True", "False", "not") else kind
                if text in ("True", "False"):
                    kind = "bool"
                elif text == "not":
                    kind = "neg"
                else:
                    kind = text
            tokens.append(_Token(kind, text, line, column))
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, tokens, fields: FieldRegistry, definitions, params):
        self.tokens = tokens
        self.pos = 0
        self.fields = fields
        self.definitions = definitions or {}
        self.params = params or {}

    # -- token helpers ----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None):
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            got = self.peek()
            want = text or kind
            raise ParseError(f"expected {want!r}, got {got.text!r}", got.line, got.column)
        return token

    def error(self, message: str):
        token = self.peek()
        raise ParseError(message, token.line, token.column)

    # -- grammar ----------------------------------------------------------

    def parse(self) -> ast.Policy:
        policy = self.policy()
        self.expect("eof")
        return policy

    def policy(self) -> ast.Policy:
        left = self.seq()
        while self.accept("op", "+"):
            left = ast.Parallel(left, self.seq())
        return left

    def seq(self) -> ast.Policy:
        left = self.stmt()
        while self.accept("op", ";"):
            left = ast.Seq(left, self.stmt())
        return left

    def stmt(self) -> ast.Policy:
        token = self.peek()
        if token.kind == "if":
            return self.conditional()
        if token.kind == "atomic":
            self.next()
            self.expect("op", "(")
            body = self.policy()
            self.expect("op", ")")
            return ast.Atomic(body)
        if token.kind == "neg" or (token.kind == "op" and token.text == "!"):
            pred = self.pred_unary()
            return self.pred_continue(pred)
        if token.kind == "op" and token.text == "(":
            self.next()
            inner = self.policy()
            self.expect("op", ")")
            nxt = self.peek()
            if nxt.kind == "op" and nxt.text in ("&", "|"):
                if not isinstance(inner, ast.Predicate):
                    self.error("left operand of '&'/'|' must be a predicate")
                return self.pred_continue(inner)
            return inner
        if token.kind == "id":
            self.next()
            return self.pred_continue(ast.Id())
        if token.kind == "drop":
            self.next()
            return self.pred_continue(ast.Drop())
        if token.kind == "name":
            return self.name_statement()
        self.error(f"unexpected token {token.text!r} at start of statement")

    def conditional(self) -> ast.Policy:
        self.expect("if")
        pred = self.predicate()
        self.expect("then")
        then = self.policy()
        self.expect("else")
        orelse = self.stmt()
        return ast.If(pred, then, orelse)

    def name_statement(self) -> ast.Policy:
        name_token = self.expect("name")
        name = name_token.text
        indices = self.indices()
        token = self.peek()
        if token.kind == "arrow":
            self.next()
            value = self.expression()
            if indices:
                return ast.StateMod(name, self._index_expr(indices), value)
            field = self._field_name(name)
            if field is None:
                self.error(f"{name!r} is not a known packet field")
            if not isinstance(value, ast.Value):
                self.error("field modification rhs must be a literal value")
            return ast.Mod(field, value.value)
        if token.kind == "incr":
            self.next()
            if not indices:
                self.error("'++' requires a state variable index")
            return ast.StateIncr(name, self._index_expr(indices))
        if token.kind == "decr":
            self.next()
            if not indices:
                self.error("'--' requires a state variable index")
            return ast.StateDecr(name, self._index_expr(indices))
        pred = self.finish_test(name, indices, name_token)
        return self.pred_continue(pred)

    # -- predicates ---------------------------------------------------

    def predicate(self) -> ast.Predicate:
        left = self.pred_and()
        while self.accept("op", "|"):
            left = ast.Or(left, self.pred_and())
        return left

    def pred_and(self) -> ast.Predicate:
        left = self.pred_unary()
        while self.accept("op", "&"):
            left = ast.And(left, self.pred_unary())
        return left

    def pred_unary(self) -> ast.Predicate:
        token = self.peek()
        if token.kind == "neg" or (token.kind == "op" and token.text == "!"):
            self.next()
            return ast.Not(self.pred_unary())
        if token.kind == "op" and token.text == "(":
            self.next()
            pred = self.predicate()
            self.expect("op", ")")
            return pred
        if token.kind == "id":
            self.next()
            return ast.Id()
        if token.kind == "drop":
            self.next()
            return ast.Drop()
        if token.kind == "name":
            name_token = self.next()
            indices = self.indices()
            return self.finish_test(name_token.text, indices, name_token)
        self.error(f"expected a predicate, got {token.text!r}")

    def pred_continue(self, left: ast.Predicate) -> ast.Predicate:
        """Continue parsing '&'/'|' operators after a parsed atom."""
        while True:
            if self.accept("op", "&"):
                left = ast.And(left, self.pred_unary())
            elif self.accept("op", "|"):
                right = self.pred_and()
                left = ast.Or(left, right)
            else:
                return left

    def finish_test(self, name: str, indices, name_token) -> ast.Predicate:
        if self.accept("op", "="):
            rhs = self.expression()
            if indices:
                return ast.StateTest(name, self._index_expr(indices), rhs)
            field = self._field_name(name)
            if field is None:
                raise ParseError(
                    f"{name!r} is not a known packet field (register it or "
                    "declare it as a state variable with an index)",
                    name_token.line,
                    name_token.column,
                )
            if isinstance(rhs, ast.Field):
                raise ParseError(
                    "field-field tests are not part of SNAP's source syntax "
                    "(they arise only inside xFDDs)",
                    name_token.line,
                    name_token.column,
                )
            if not isinstance(rhs, ast.Value):
                raise ParseError(
                    "rhs of a field test must be a literal value",
                    name_token.line,
                    name_token.column,
                )
            return ast.Test(field, rhs.value)
        if indices:
            # Boolean sugar: bare ``s[e]`` means ``s[e] = True`` (Fig. 1, l.8).
            return ast.StateTest(name, self._index_expr(indices), True)
        # A bare name: named sub-policy, or error.
        if name in self.definitions:
            bound = self.definitions[name]
            if isinstance(bound, ast.Predicate):
                return bound
            # A non-predicate binding is fine in statement position; the
            # caller (pred_continue) only allows &/| on predicates, which
            # will fail naturally if misused.
            return bound
        raise ParseError(
            f"unknown identifier {name!r} (not a definition, parameter, or "
            "state reference)",
            name_token.line,
            name_token.column,
        )

    # -- expressions ----------------------------------------------------

    def indices(self):
        indices = []
        while self.accept("op", "["):
            indices.append(self.expression())
            self.expect("op", "]")
        return indices

    def _index_expr(self, indices) -> ast.Expr:
        return indices[0] if len(indices) == 1 else ast.Vector(indices)

    def expression(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int":
            self.next()
            return ast.Value(int(token.text))
        if token.kind == "ip":
            self.next()
            prefix = IPPrefix(token.text)
            # A /32 literal is just an address value; keep prefixes as tests.
            return ast.Value(prefix.network if prefix.is_host else prefix)
        if token.kind == "bool":
            self.next()
            return ast.Value(token.text == "True")
        if token.kind == "string":
            self.next()
            raw = token.text[1:-1]
            return ast.Value(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if token.kind == "op" and token.text == "(":
            self.next()
            items = [self.expression()]
            while self.accept("op", ","):
                items.append(self.expression())
            self.expect("op", ")")
            if len(items) == 1:
                return items[0]
            return ast.Vector(items)
        if token.kind == "name":
            self.next()
            name = token.text
            if name in self.params:
                return ast.as_expr(self.params[name])
            field = self._field_name(name)
            if field is not None:
                return ast.Field(field)
            return ast.Value(Symbol(name))
        self.error(f"expected an expression, got {token.text!r}")

    def _field_name(self, name: str) -> str | None:
        """Canonical (lowercase) field name, or None if not a field."""
        lowered = name.lower()
        if lowered in self.fields:
            return lowered
        return None


def parse(
    source: str,
    fields: FieldRegistry | None = None,
    definitions: dict | None = None,
    params: dict | None = None,
) -> ast.Policy:
    """Parse SNAP source text into a policy AST.

    ``definitions`` binds bare names to previously built policies (so
    programs can reference ``assign-egress`` etc.); ``params`` substitutes
    named constants such as ``threshold``.
    """
    registry = fields or DEFAULT_REGISTRY
    tokens = _tokenize(source)
    return _Parser(tokens, registry, definitions, params).parse()


def parse_predicate(
    source: str,
    fields: FieldRegistry | None = None,
    params: dict | None = None,
) -> ast.Predicate:
    """Parse text that must denote a predicate (e.g. an ``assumption``)."""
    policy = parse(source, fields=fields, params=params)
    if not isinstance(policy, ast.Predicate):
        # Predicates built with + / ; of predicates are semantically
        # predicates but structurally policies; reject for clarity.
        if isinstance(policy, (ast.Parallel, ast.Seq)):
            rebuilt = _as_predicate(policy)
            if rebuilt is not None:
                return rebuilt
        raise ParseError("expected a predicate, got a policy with effects")
    return policy


def _as_predicate(policy: ast.Policy):
    """Rebuild + / ; over predicates as | / & (they coincide on predicates)."""
    if isinstance(policy, ast.Predicate):
        return policy
    if isinstance(policy, ast.Parallel):
        left = _as_predicate(policy.left)
        right = _as_predicate(policy.right)
        if left is not None and right is not None:
            return ast.Or(left, right)
    if isinstance(policy, ast.Seq):
        left = _as_predicate(policy.left)
        right = _as_predicate(policy.right)
        if left is not None and right is not None:
            return ast.And(left, right)
    return None
