"""SNAP values.

Appendix A defines values as "packet-related fields (IP address, TCP ports,
MAC addresses, DNS domains) along with integers, booleans and vectors of
such values".  We represent them with plain Python types:

* integers / booleans        -> ``int`` / ``bool``
* IP addresses               -> ``int`` (32-bit) produced by the parser
* IP prefixes (test rhs)     -> :class:`repro.util.IPPrefix`
* DNS names, user agents ... -> ``str``
* symbolic enum constants    -> :class:`Symbol` (e.g. ``SYN``, ``ESTABLISHED``)
* vectors                    -> ``tuple`` of the above

Only :func:`matches` knows that testing an address against a prefix means
containment; everywhere else equality is structural.
"""

from __future__ import annotations

from repro.util.ipaddr import IPPrefix


class Symbol:
    """An interned symbolic constant such as ``SYN`` or ``ESTABLISHED``.

    Programs in Appendix F compare fields against bare identifiers
    (``tcp.flags = SYN``).  Two symbols are equal iff their names are.
    """

    __slots__ = ("name",)
    _interned: dict[str, "Symbol"] = {}

    def __new__(cls, name: str):
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        symbol = super().__new__(cls)
        symbol.name = name
        cls._interned[name] = symbol
        return symbol

    def __eq__(self, other):
        return self is other or (isinstance(other, Symbol) and other.name == self.name)

    def __reduce__(self):
        # Rebuild through __new__'s interning: unpickling in a worker
        # process yields (or creates) that process's canonical instance.
        return (Symbol, (self.name,))

    def __hash__(self):
        return hash(("Symbol", self.name))

    def __repr__(self):
        return f"Symbol({self.name!r})"

    def __str__(self):
        return self.name


def matches(packet_value, test_value) -> bool:
    """Does a packet field value satisfy a test value?

    Equality, except that an :class:`IPPrefix` on the test side matches any
    integer address it contains (``dstip = 10.0.6.0/24``).
    """
    if isinstance(test_value, IPPrefix):
        if isinstance(packet_value, IPPrefix):
            return test_value.contains(packet_value)
        if isinstance(packet_value, int) and not isinstance(packet_value, bool):
            return test_value.contains(packet_value)
        return False
    return packet_value == test_value


def values_disjoint(a, b) -> bool:
    """True when no packet value can match both test values.

    Used by the xFDD context to prune contradictory branches: once a path
    asserts ``dstip = 10.0.6.0/24``, the test ``dstip = 10.0.7.1`` is
    unsatisfiable on that path.
    """
    if isinstance(a, IPPrefix) and isinstance(b, IPPrefix):
        return not a.overlaps(b)
    if isinstance(a, IPPrefix):
        return not (isinstance(b, int) and not isinstance(b, bool) and a.contains(b))
    if isinstance(b, IPPrefix):
        return not (isinstance(a, int) and not isinstance(a, bool) and b.contains(a))
    return a != b


def value_implies(a, b) -> bool:
    """True when ``field = a`` guarantees ``field = b``.

    Exact equality, or prefix containment (a host inside a prefix, or a
    longer prefix inside a shorter one).
    """
    if a == b:
        return True
    if isinstance(b, IPPrefix):
        if isinstance(a, IPPrefix):
            return b.contains(a)
        if isinstance(a, int) and not isinstance(a, bool):
            return b.contains(a)
    return False


def value_sort_key(value):
    """A total order over heterogeneous test values (for xFDD ordering)."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, int):
        return (1, value)
    if isinstance(value, IPPrefix):
        return (2, value.network, value.length)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, Symbol):
        return (4, value.name)
    if isinstance(value, tuple):
        return (5, tuple(value_sort_key(item) for item in value))
    return (6, repr(value))
