"""Abstract syntax of SNAP (Figure 4 of the paper).

Expressions::

    e ::= v | f | (e1, ..., en)

Predicates (never modify packets or state; may *read* state)::

    x, y ::= id | drop | f = v | !x | x | y | x & y | s[e1] = e2

Policies::

    p, q ::= x | f <- v | p + q | p ; q | s[e1] <- e2
           | s[e]++ | s[e]-- | if x then p else q | atomic(p)

All nodes are immutable and hashable.  Python operator overloading gives
the NetCore-style combinator syntax used throughout tests and apps::

    (Test('dstip', prefix) & Test('srcport', 53)) >> Mod('outport', 6)
    policy_a + policy_b          # parallel composition
    policy_a >> policy_b         # sequential composition (';' in the paper)
    ~predicate                   # negation
"""

from __future__ import annotations

from repro.lang.errors import SnapError
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _slot_reduce(node):
    """Pickle support for the immutable AST nodes.

    Every node's ``__init__`` takes exactly its *public* ``__slots__`` in
    order (and re-coercing an already-built sub-node is the identity), so
    rebuilding through the constructor round-trips — the default
    slot-state protocol would instead trip over the ``__setattr__``
    immutability guards.  Underscore-prefixed slots are derived caches
    (the ``_fingerprint`` digest), not constructor arguments; they are
    skipped and lazily recomputed on the unpickled node.
    """
    cls = type(node)
    args = tuple(
        getattr(node, name)
        for klass in cls.__mro__
        for name in getattr(klass, "__slots__", ())
        if not name.startswith("_")
    )
    return (cls, args)


class Expr:
    """Base class for index/value expressions (value, field, or vector)."""

    # ``_fingerprint`` caches the canonical structural digest computed by
    # :mod:`repro.lang.fingerprint`; it is derived state, never compared
    # or pickled.
    __slots__ = ("_fingerprint",)

    __reduce__ = _slot_reduce

    def fields_used(self) -> frozenset:
        raise NotImplementedError


class Value(Expr):
    """A literal value (int, bool, str, Symbol, IPPrefix)."""

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, Expr):
            raise SnapError("Value cannot wrap another expression")
        object.__setattr__(self, "value", value)

    def fields_used(self):
        return frozenset()

    def __eq__(self, other):
        return isinstance(other, Value) and other.value == self.value

    def __hash__(self):
        return hash(("Value", self.value))

    def __repr__(self):
        return f"Value({self.value!r})"

    def __setattr__(self, *args):  # immutability guard
        raise AttributeError("Value is immutable")


class Field(Expr):
    """A reference to a packet field, e.g. ``Field('srcip')``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def fields_used(self):
        return frozenset((self.name,))

    def __eq__(self, other):
        return isinstance(other, Field) and other.name == self.name

    def __hash__(self):
        return hash(("Field", self.name))

    def __repr__(self):
        return f"Field({self.name!r})"

    def __setattr__(self, *args):
        raise AttributeError("Field is immutable")


class Vector(Expr):
    """A vector of sub-expressions: multi-dimensional state indices."""

    __slots__ = ("items",)

    def __init__(self, items):
        items = tuple(as_expr(item) for item in items)
        if not items:
            raise SnapError("empty expression vector")
        object.__setattr__(self, "items", items)

    def fields_used(self):
        out = frozenset()
        for item in self.items:
            out |= item.fields_used()
        return out

    def __eq__(self, other):
        return isinstance(other, Vector) and other.items == self.items

    def __hash__(self):
        return hash(("Vector", self.items))

    def __repr__(self):
        return f"Vector({list(self.items)!r})"

    def __setattr__(self, *args):
        raise AttributeError("Vector is immutable")


def as_expr(value) -> Expr:
    """Coerce a Python value / field name shorthand into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (list, tuple)):
        return Vector(value)
    return Value(value)


def flatten_expr(expr: Expr) -> tuple:
    """Flatten an expression into a tuple of scalar (Value|Field) exprs."""
    if isinstance(expr, Vector):
        out = []
        for item in expr.items:
            out.extend(flatten_expr(item))
        return tuple(out)
    return (expr,)


# ---------------------------------------------------------------------------
# Policies (predicates are a subclass)
# ---------------------------------------------------------------------------


class Policy:
    """Base class for all SNAP policies."""

    # Cached structural digest (see :mod:`repro.lang.fingerprint`).
    __slots__ = ("_fingerprint",)

    __reduce__ = _slot_reduce

    def __add__(self, other):
        return Parallel(self, other)

    def __rshift__(self, other):
        return Seq(self, other)

    def __repr__(self):
        from repro.lang.pretty import pretty

        return f"<{type(self).__name__}: {pretty(self)}>"


class Predicate(Policy):
    """Policies that only pass/drop the packet (may read state)."""

    __slots__ = ()

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)


class Id(Predicate):
    """``id`` — pass the packet unchanged."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, Id)

    def __hash__(self):
        return hash("Id")


class Drop(Predicate):
    """``drop`` — discard the packet."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, Drop)

    def __hash__(self):
        return hash("Drop")


class Test(Predicate):
    """``f = v`` — pass iff field ``f`` matches value ``v``."""

    __slots__ = ("field", "value")

    def __init__(self, field: str, value):
        if isinstance(value, Expr):
            raise SnapError("Test value must be a literal; use FieldEq for f1=f2")
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)

    def __eq__(self, other):
        return (
            isinstance(other, Test)
            and other.field == self.field
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("Test", self.field, self.value))

    def __setattr__(self, *args):
        raise AttributeError("Test is immutable")


class Not(Predicate):
    """``!x`` — negation of a predicate."""

    __slots__ = ("pred",)

    def __init__(self, pred: Predicate):
        _require_predicate(pred, "!")
        object.__setattr__(self, "pred", pred)

    def __eq__(self, other):
        return isinstance(other, Not) and other.pred == self.pred

    def __hash__(self):
        return hash(("Not", self.pred))

    def __setattr__(self, *args):
        raise AttributeError("Not is immutable")


class And(Predicate):
    """``x & y`` — conjunction (reads of x, then reads of y)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate):
        _require_predicate(left, "&")
        _require_predicate(right, "&")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __eq__(self, other):
        return (
            isinstance(other, And)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("And", self.left, self.right))

    def __setattr__(self, *args):
        raise AttributeError("And is immutable")


class Or(Predicate):
    """``x | y`` — disjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate):
        _require_predicate(left, "|")
        _require_predicate(right, "|")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __eq__(self, other):
        return (
            isinstance(other, Or)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("Or", self.left, self.right))

    def __setattr__(self, *args):
        raise AttributeError("Or is immutable")


class StateTest(Predicate):
    """``s[e1] = e2`` — pass iff state variable ``s`` at ``e1`` equals ``e2``."""

    __slots__ = ("var", "index", "value")

    def __init__(self, var: str, index, value):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", as_expr(index))
        object.__setattr__(self, "value", as_expr(value))

    def __eq__(self, other):
        return (
            isinstance(other, StateTest)
            and other.var == self.var
            and other.index == self.index
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("StateTest", self.var, self.index, self.value))

    def __setattr__(self, *args):
        raise AttributeError("StateTest is immutable")


class Mod(Policy):
    """``f <- v`` — set field ``f`` to literal value ``v``."""

    __slots__ = ("field", "value")

    def __init__(self, field: str, value):
        if isinstance(value, Expr):
            raise SnapError("field modification rhs must be a literal value")
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)

    def __eq__(self, other):
        return (
            isinstance(other, Mod)
            and other.field == self.field
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("Mod", self.field, self.value))

    def __setattr__(self, *args):
        raise AttributeError("Mod is immutable")


class StateMod(Policy):
    """``s[e1] <- e2`` — write ``e2`` into state variable ``s`` at ``e1``."""

    __slots__ = ("var", "index", "value")

    def __init__(self, var: str, index, value):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", as_expr(index))
        object.__setattr__(self, "value", as_expr(value))

    def __eq__(self, other):
        return (
            isinstance(other, StateMod)
            and other.var == self.var
            and other.index == self.index
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("StateMod", self.var, self.index, self.value))

    def __setattr__(self, *args):
        raise AttributeError("StateMod is immutable")


class StateIncr(Policy):
    """``s[e]++`` — increment the counter at ``s[e]``."""

    __slots__ = ("var", "index")

    def __init__(self, var: str, index):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", as_expr(index))

    def __eq__(self, other):
        return (
            isinstance(other, StateIncr)
            and other.var == self.var
            and other.index == self.index
        )

    def __hash__(self):
        return hash(("StateIncr", self.var, self.index))

    def __setattr__(self, *args):
        raise AttributeError("StateIncr is immutable")


class StateDecr(Policy):
    """``s[e]--`` — decrement the counter at ``s[e]``."""

    __slots__ = ("var", "index")

    def __init__(self, var: str, index):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", as_expr(index))

    def __eq__(self, other):
        return (
            isinstance(other, StateDecr)
            and other.var == self.var
            and other.index == self.index
        )

    def __hash__(self):
        return hash(("StateDecr", self.var, self.index))

    def __setattr__(self, *args):
        raise AttributeError("StateDecr is immutable")


class Parallel(Policy):
    """``p + q`` — copy the packet and run both branches."""

    __slots__ = ("left", "right")

    def __init__(self, left: Policy, right: Policy):
        _require_policy(left, "+")
        _require_policy(right, "+")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __eq__(self, other):
        return (
            isinstance(other, Parallel)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("Parallel", self.left, self.right))

    def __setattr__(self, *args):
        raise AttributeError("Parallel is immutable")


class Seq(Policy):
    """``p ; q`` — run p, then q on each of p's outputs."""

    __slots__ = ("left", "right")

    def __init__(self, left: Policy, right: Policy):
        _require_policy(left, ";")
        _require_policy(right, ";")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __eq__(self, other):
        return (
            isinstance(other, Seq)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("Seq", self.left, self.right))

    def __setattr__(self, *args):
        raise AttributeError("Seq is immutable")


class If(Policy):
    """``if x then p else q`` — explicit conditional."""

    __slots__ = ("pred", "then", "orelse")

    def __init__(self, pred: Predicate, then: Policy, orelse: Policy):
        _require_predicate(pred, "if")
        _require_policy(then, "then")
        _require_policy(orelse, "else")
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "then", then)
        object.__setattr__(self, "orelse", orelse)

    def __eq__(self, other):
        return (
            isinstance(other, If)
            and other.pred == self.pred
            and other.then == self.then
            and other.orelse == self.orelse
        )

    def __hash__(self):
        return hash(("If", self.pred, self.then, self.orelse))

    def __setattr__(self, *args):
        raise AttributeError("If is immutable")


class Atomic(Policy):
    """``atomic(p)`` — network transaction: all state in p is co-located."""

    __slots__ = ("body",)

    def __init__(self, body: Policy):
        _require_policy(body, "atomic")
        object.__setattr__(self, "body", body)

    def __eq__(self, other):
        return isinstance(other, Atomic) and other.body == self.body

    def __hash__(self):
        return hash(("Atomic", self.body))

    def __setattr__(self, *args):
        raise AttributeError("Atomic is immutable")


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def _require_predicate(x, op: str) -> None:
    if not isinstance(x, Predicate):
        raise SnapError(f"operand of {op!r} must be a predicate, got {type(x).__name__}")


def _require_policy(p, op: str) -> None:
    if not isinstance(p, Policy):
        raise SnapError(f"operand of {op!r} must be a policy, got {type(p).__name__}")


def state_reads(policy: Policy) -> frozenset:
    """r(p): names of state variables the policy may read (Appendix B)."""
    if isinstance(policy, StateTest):
        return frozenset((policy.var,))
    if isinstance(policy, Not):
        return state_reads(policy.pred)
    if isinstance(policy, (And, Or, Parallel, Seq)):
        return state_reads(policy.left) | state_reads(policy.right)
    if isinstance(policy, If):
        return (
            state_reads(policy.pred)
            | state_reads(policy.then)
            | state_reads(policy.orelse)
        )
    if isinstance(policy, Atomic):
        return state_reads(policy.body)
    return frozenset()


def state_writes(policy: Policy) -> frozenset:
    """w(p): names of state variables the policy may write (Appendix B)."""
    if isinstance(policy, (StateMod, StateIncr, StateDecr)):
        return frozenset((policy.var,))
    if isinstance(policy, (Parallel, Seq)):
        return state_writes(policy.left) | state_writes(policy.right)
    if isinstance(policy, If):
        return state_writes(policy.then) | state_writes(policy.orelse)
    if isinstance(policy, Atomic):
        return state_writes(policy.body)
    return frozenset()


def state_variables(policy: Policy) -> frozenset:
    """All state variables the policy touches."""
    return state_reads(policy) | state_writes(policy)


def fields_mentioned(policy: Policy) -> frozenset:
    """Every packet field the policy tests, modifies, or uses as an index."""
    if isinstance(policy, Test):
        return frozenset((policy.field,))
    if isinstance(policy, Mod):
        return frozenset((policy.field,))
    if isinstance(policy, StateTest):
        return policy.index.fields_used() | policy.value.fields_used()
    if isinstance(policy, (StateIncr, StateDecr)):
        return policy.index.fields_used()
    if isinstance(policy, StateMod):
        return policy.index.fields_used() | policy.value.fields_used()
    if isinstance(policy, Not):
        return fields_mentioned(policy.pred)
    if isinstance(policy, (And, Or, Parallel, Seq)):
        return fields_mentioned(policy.left) | fields_mentioned(policy.right)
    if isinstance(policy, If):
        return (
            fields_mentioned(policy.pred)
            | fields_mentioned(policy.then)
            | fields_mentioned(policy.orelse)
        )
    if isinstance(policy, Atomic):
        return fields_mentioned(policy.body)
    return frozenset()


def infer_state_defaults(policy: Policy) -> dict:
    """Guess sensible defaults for each state variable in the policy.

    Variables that are incremented/decremented default to 0; variables only
    written/tested with booleans default to False; anything else defaults
    to None (the "absent" value).  Programs can override via
    ``Program.state_defaults``.
    """
    numeric: set[str] = set()
    boolean: set[str] = set()
    other: set[str] = set()

    def visit(node):
        if isinstance(node, (StateIncr, StateDecr)):
            numeric.add(node.var)
        elif isinstance(node, (StateMod, StateTest)):
            val = node.value
            if isinstance(val, Value) and isinstance(val.value, bool):
                boolean.add(node.var)
            elif isinstance(val, Value) and isinstance(val.value, int):
                numeric.add(node.var)
            else:
                other.add(node.var)
        elif isinstance(node, Not):
            visit(node.pred)
        elif isinstance(node, (And, Or, Parallel, Seq)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, If):
            visit(node.pred)
            visit(node.then)
            visit(node.orelse)
        elif isinstance(node, Atomic):
            visit(node.body)

    visit(policy)
    defaults = {}
    for name in numeric | boolean | other:
        if name in numeric:
            defaults[name] = 0
        elif name in boolean:
            defaults[name] = False
        else:
            defaults[name] = None
    return defaults


def seq_all(policies) -> Policy:
    """Fold a list with ``;`` (identity for the empty list)."""
    policies = list(policies)
    if not policies:
        return Id()
    result = policies[0]
    for policy in policies[1:]:
        result = Seq(result, policy)
    return result


def par_all(policies) -> Policy:
    """Fold a list with ``+`` (drop for the empty list)."""
    policies = list(policies)
    if not policies:
        return Drop()
    result = policies[0]
    for policy in policies[1:]:
        result = Parallel(result, policy)
    return result


def match_all(**tests) -> Predicate:
    """Conjunction of ``field = value`` tests from keyword arguments."""
    preds = [Test(field, value) for field, value in tests.items()]
    if not preds:
        return Id()
    result = preds[0]
    for pred in preds[1:]:
        result = And(result, pred)
    return result


__all__ = [
    "Expr",
    "Value",
    "Field",
    "Vector",
    "as_expr",
    "flatten_expr",
    "Policy",
    "Predicate",
    "Id",
    "Drop",
    "Test",
    "Not",
    "And",
    "Or",
    "StateTest",
    "Mod",
    "StateMod",
    "StateIncr",
    "StateDecr",
    "Parallel",
    "Seq",
    "If",
    "Atomic",
    "state_reads",
    "state_writes",
    "state_variables",
    "fields_mentioned",
    "infer_state_defaults",
    "seq_all",
    "par_all",
    "match_all",
    "Symbol",
    "IPPrefix",
]
