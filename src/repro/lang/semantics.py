"""Reference semantics of SNAP — the ``eval`` function of Appendix A.

``eval`` is the *specification*: any implementation (the xFDD interpreter,
the distributed data plane) must process packets exactly as ``eval`` says.
It takes a policy, a store, and a packet, and returns

    (new store, set of output packets, log)

where the log records reads ``R s`` and writes ``W s`` of state variables.
Parallel and sequential composition check the logs for read/write and
write/write conflicts; a conflict is the undefined case ⊥ of the paper,
raised here as :class:`InconsistentStateError`.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import InconsistentStateError, SnapError
from repro.lang.packet import Packet
from repro.lang.state import Store
from repro.lang.values import matches


class Log:
    """A read/write log: which state variables were read and written."""

    __slots__ = ("reads", "writes")

    def __init__(self, reads=frozenset(), writes=frozenset()):
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)

    def union(self, other: "Log") -> "Log":
        return Log(self.reads | other.reads, self.writes | other.writes)

    def consistent_with(self, other: "Log") -> bool:
        """Appendix A ``consistent``: no W in one against R or W in other."""
        for var in self.writes:
            if var in other.reads or var in other.writes:
                return False
        for var in other.writes:
            if var in self.reads or var in self.writes:
                return False
        return True

    def __eq__(self, other):
        return (
            isinstance(other, Log)
            and other.reads == self.reads
            and other.writes == self.writes
        )

    def __repr__(self):
        return f"Log(reads={sorted(self.reads)}, writes={sorted(self.writes)})"


EMPTY_LOG = Log()


def eval_expr(expr: ast.Expr, packet: Packet):
    """Appendix A ``evale``: evaluate an expression against a packet."""
    if isinstance(expr, ast.Value):
        return expr.value
    if isinstance(expr, ast.Field):
        return packet.get(expr.name)
    if isinstance(expr, ast.Vector):
        return tuple(eval_expr(item, packet) for item in expr.items)
    raise SnapError(f"not an expression: {expr!r}")


def index_key(expr: ast.Expr, packet: Packet) -> tuple:
    """Evaluate an index expression to a hashable state key (a tuple)."""
    value = eval_expr(expr, packet)
    return value if isinstance(value, tuple) else (value,)


def _merge_stores(base: Store, variants: list[Store]) -> Store:
    """Appendix A ``merge``: prefer a variant's value where it changed."""
    merged = base.copy()
    names = set(base.names())
    for variant in variants:
        names |= set(variant.names())
    for name in names:
        base_var = base.variable(name)
        chosen = None
        for variant in variants:
            if variant.variable(name) != base_var:
                chosen = variant.variable(name)
                break
        if chosen is None and variants:
            chosen = variants[-1].variable(name)
        if chosen is not None:
            merged._vars[name] = chosen.copy()
    return merged


def eval_policy(policy: ast.Policy, store: Store, packet: Packet):
    """The eval function of Figure 13.  Returns (store, packets, log).

    The input store is never mutated; a (possibly shared) copy is returned.
    """
    # --- predicates ------------------------------------------------------
    if isinstance(policy, ast.Id):
        return store, frozenset((packet,)), EMPTY_LOG
    if isinstance(policy, ast.Drop):
        return store, frozenset(), EMPTY_LOG
    if isinstance(policy, ast.Test):
        passed = matches(packet.get(policy.field), policy.value)
        return store, frozenset((packet,)) if passed else frozenset(), EMPTY_LOG
    if isinstance(policy, ast.StateTest):
        key = index_key(policy.index, packet)
        want = eval_expr(policy.value, packet)
        got = store.read(policy.var, key)
        passed = got == want
        log = Log(reads=(policy.var,))
        return store, frozenset((packet,)) if passed else frozenset(), log
    if isinstance(policy, ast.Not):
        _, passed, log = eval_policy(policy.pred, store, packet)
        out = frozenset() if packet in passed else frozenset((packet,))
        return store, out, log
    if isinstance(policy, ast.And):
        _, left, log1 = eval_policy(policy.left, store, packet)
        _, right, log2 = eval_policy(policy.right, store, packet)
        return store, left & right, log1.union(log2)
    if isinstance(policy, ast.Or):
        _, left, log1 = eval_policy(policy.left, store, packet)
        _, right, log2 = eval_policy(policy.right, store, packet)
        return store, left | right, log1.union(log2)

    # --- modifications ---------------------------------------------------
    if isinstance(policy, ast.Mod):
        return store, frozenset((packet.modify(policy.field, policy.value),)), EMPTY_LOG
    if isinstance(policy, ast.StateMod):
        key = index_key(policy.index, packet)
        value = eval_expr(policy.value, packet)
        updated = store.copy()
        updated.write(policy.var, key, value)
        return updated, frozenset((packet,)), Log(writes=(policy.var,))
    if isinstance(policy, ast.StateIncr):
        key = index_key(policy.index, packet)
        updated = store.copy()
        updated.variable(policy.var).increment(key, +1)
        return updated, frozenset((packet,)), Log(writes=(policy.var,))
    if isinstance(policy, ast.StateDecr):
        key = index_key(policy.index, packet)
        updated = store.copy()
        updated.variable(policy.var).increment(key, -1)
        return updated, frozenset((packet,)), Log(writes=(policy.var,))

    # --- composition -----------------------------------------------------
    if isinstance(policy, ast.If):
        _, passed, pred_log = eval_policy(policy.pred, store, packet)
        branch = policy.then if packet in passed else policy.orelse
        new_store, packets, branch_log = eval_policy(branch, store, packet)
        return new_store, packets, branch_log.union(pred_log)

    if isinstance(policy, ast.Parallel):
        store1, packets1, log1 = eval_policy(policy.left, store, packet)
        store2, packets2, log2 = eval_policy(policy.right, store, packet)
        if not log1.consistent_with(log2):
            raise InconsistentStateError(
                f"parallel composition conflicts on state: {log1} vs {log2}"
            )
        merged = _merge_stores(store, [store1, store2])
        return merged, packets1 | packets2, log1.union(log2)

    if isinstance(policy, ast.Seq):
        store1, packets1, log1 = eval_policy(policy.left, store, packet)
        results = [eval_policy(policy.right, store1, pkt) for pkt in packets1]
        logs = [log for _, _, log in results]
        for i, log_i in enumerate(logs):
            for log_j in logs[i + 1 :]:
                if not log_i.consistent_with(log_j):
                    raise InconsistentStateError(
                        "sequential composition produced inconsistent parallel "
                        f"runs of the right operand: {log_i} vs {log_j}"
                    )
        out_packets = frozenset().union(*(pkts for _, pkts, _ in results)) if results else frozenset()
        merged = _merge_stores(store1, [st for st, _, _ in results])
        total_log = log1
        for log in logs:
            total_log = total_log.union(log)
        return merged, out_packets, total_log

    if isinstance(policy, ast.Atomic):
        return eval_policy(policy.body, store, packet)

    raise SnapError(f"cannot evaluate: {policy!r}")


def run(policy: ast.Policy, packet: Packet, store: Store | None = None):
    """Evaluate one packet; returns (store, frozenset of output packets).

    Convenience wrapper that creates a store with inferred defaults when
    none is given, and discards the log.
    """
    if store is None:
        store = Store(ast.infer_state_defaults(policy))
    new_store, packets, _ = eval_policy(policy, store, packet)
    return new_store, packets


def run_sequence(policy: ast.Policy, packets, store: Store | None = None):
    """Evaluate a packet sequence, threading state through.

    Returns (final store, list of per-packet output sets).  This is the
    OBS-level reference behaviour the distributed simulation must match.
    """
    if store is None:
        store = Store(ast.infer_state_defaults(policy))
    outputs = []
    for packet in packets:
        store, out, _ = eval_policy(policy, store, packet)
        outputs.append(out)
    return store, outputs
