"""The packet-field registry.

Footnote 1 of the paper: "The design of the language is unaffected by the
chosen set of fields. ... we assume a rich set of fields, e.g. DNS response
data," made available by programmable parsers (P4) or a preprocessor
(Snort-style).  We therefore keep an open registry: the standard 5-tuple
and SNAP bookkeeping fields are predefined, and applications may register
extra protocol fields (``dns.rdata``, ``mpeg.frame-type``, ...).

The registry also fixes an arbitrary-but-total order on fields, required by
the xFDD test order (§4.2: "Field-value tests themselves are ordered by
fixing an arbitrary order on fields and values").  ``inport`` and
``outport`` sort first so packet-state mapping finds them near xFDD roots.
"""

from __future__ import annotations

from repro.lang.errors import SnapError

# Fields every SNAP deployment has: the OBS port pseudo-fields plus the
# classic 5-tuple.  Order matters (earlier = nearer the xFDD root).
BASE_FIELDS = (
    "inport",
    "outport",
    "srcip",
    "dstip",
    "srcport",
    "dstport",
    "proto",
    "srcmac",
    "dstmac",
)

# Rich fields used by the Table 3 / Appendix F applications.  Field names
# are case-insensitive; the canonical form is lowercase (the paper writes
# smtp.MTA and DNS.rdata interchangeably with lowercase forms).
EXTENDED_FIELDS = (
    "tcp.flags",
    "dns.rdata",
    "dns.qname",
    "dns.ttl",
    "http.user-agent",
    "smtp.mta",
    "ftp.port",
    "mpeg.frame-type",
    "sid",
    "content",
)


class FieldRegistry:
    """An ordered set of known packet fields.

    A registry instance is attached to a parsed program; the parser uses it
    to decide whether a bare identifier denotes a field or a symbolic value.
    """

    def __init__(self, extra_fields=()):
        self._order: dict[str, int] = {}
        for name in BASE_FIELDS:
            self._order[name] = len(self._order)
        for name in EXTENDED_FIELDS:
            self._order[name] = len(self._order)
        for name in extra_fields:
            self.register(name)

    def register(self, name: str) -> None:
        """Add a new field (idempotent); it sorts after existing fields."""
        name = name.lower()
        if name not in self._order:
            self._order[name] = len(self._order)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._order

    def rank(self, name: str) -> int:
        """Position of the field in the total order (for xFDD ordering)."""
        try:
            return self._order[name.lower()]
        except KeyError:
            raise SnapError(f"unknown packet field: {name!r}") from None

    def names(self):
        return tuple(self._order)

    def __len__(self):
        return len(self._order)


#: Shared default registry.  Parsers default to this; tests that need a
#: pristine registry construct their own.
DEFAULT_REGISTRY = FieldRegistry()
