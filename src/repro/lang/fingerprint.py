"""Canonical structural fingerprints for policy ASTs.

Every :class:`~repro.lang.ast.Policy` / :class:`~repro.lang.ast.Expr`
node gets a 128-bit blake2b digest of its *structure*: node type plus the
canonical encoding of every public slot, child digests included.  Two
independently constructed but structurally equal ASTs fingerprint
identically — in this process, in another process, in a later session —
which is what makes the digest usable as a *cross-generation* cache key
for incremental compilation (``id()``-based keys die with the objects
they name; ``hash()`` is salted per process for strings).

Digests are cached on the node (the ``_fingerprint`` slot shared by all
AST classes), so fingerprinting an unchanged program a second time is a
single attribute read per node.  Immutability makes the cache sound: a
node's structure can never change after construction.

The encoding is deliberately boring and versioned by construction: a
type tag byte, then length-prefixed canonical bytes per slot value.  Do
not change it casually — checked-in test vectors pin it, because stored
artifacts (bench baselines, future on-disk caches) key on it.
"""

from __future__ import annotations

import hashlib

from repro.lang import ast
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix

#: Digest size in bytes; 128 bits keeps accidental collisions out of
#: reach for any realistic policy population.
DIGEST_SIZE = 16


def _slot_names(cls) -> tuple:
    """Public ``__slots__`` across the MRO, in definition order."""
    return tuple(
        name
        for klass in cls.__mro__
        for name in getattr(klass, "__slots__", ())
        if not name.startswith("_")
    )


def _encode(value, update) -> None:
    """Feed one slot value into the hash, canonically and type-tagged."""
    if isinstance(value, (ast.Policy, ast.Expr)):
        update(b"N")
        update(fingerprint(value))
    elif isinstance(value, bool):
        update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        data = str(value).encode()
        update(b"I%d:" % len(data))
        update(data)
    elif isinstance(value, str):
        data = value.encode()
        update(b"S%d:" % len(data))
        update(data)
    elif isinstance(value, Symbol):
        data = value.name.encode()
        update(b"Y%d:" % len(data))
        update(data)
    elif isinstance(value, IPPrefix):
        update(b"P%d/%d;" % (value.network, value.length))
    elif value is None:
        update(b"_")
    elif isinstance(value, tuple):
        update(b"T%d:" % len(value))
        for item in value:
            _encode(item, update)
    else:
        # Last resort for exotic literal payloads (e.g. a frozenset in a
        # Value): repr of builtins is stable across sessions.
        data = repr(value).encode()
        update(b"R%d:" % len(data))
        update(data)


def fingerprint(node) -> bytes:
    """The node's canonical structural digest (16 bytes), cached."""
    cached = getattr(node, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=DIGEST_SIZE)
    update = h.update
    update(type(node).__name__.encode())
    update(b"(")
    for name in _slot_names(type(node)):
        _encode(getattr(node, name), update)
    update(b")")
    digest = h.digest()
    object.__setattr__(node, "_fingerprint", digest)
    return digest


def fingerprint_hex(node) -> str:
    """Hex spelling of :func:`fingerprint` (for artifact keys and docs)."""
    return fingerprint(node).hex()


__all__ = ["DIGEST_SIZE", "fingerprint", "fingerprint_hex"]
