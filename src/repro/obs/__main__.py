"""Telemetry snapshot CLI: ``python -m repro.obs <command>``.

``dump [path]``
    Render a snapshot file written by :func:`repro.obs.write_snapshot`
    (or, with no path and no ``SNAP_TELEMETRY_FILE``, the live state of
    this process — mostly useful for smoke tests).  ``--json`` prints
    the raw JSON instead of the summary; ``--prometheus`` prints the
    exposition text.

``watch [path] [--interval N]``
    Re-render the snapshot file every N seconds (default 2) until
    interrupted.  Pair with a long-running replay configured with
    ``SNAP_TELEMETRY_FILE`` to watch a run in flight.

``check-prom``
    Self-test: populate a scratch registry with every metric kind,
    render it, and strictly validate the output against the Prometheus
    text exposition grammar.  Exit code 1 on any violation — this is
    the CI lint hook for the exporter.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs


def _load(path: str | None) -> dict:
    if path is None:
        path = os.environ.get("SNAP_TELEMETRY_FILE")
    if path is None:
        return obs.snapshot_dict()
    with open(path) as handle:
        return json.load(handle)


def _format_value(value) -> str:
    if isinstance(value, dict):  # histogram
        return f"count={value.get('count')} sum={value.get('sum'):.6g}"
    return str(value)


def _render(snapshot: dict) -> str:
    lines: list = []
    meta = snapshot.get("meta", {})
    lines.append(
        f"telemetry snapshot (pid {meta.get('pid', '?')}, "
        f"python {meta.get('python', '?')})"
    )
    flags = meta.get("telemetry", {})
    lines.append(
        f"  metrics={'on' if flags.get('metrics') else 'off'} "
        f"tracing={'on' if flags.get('tracing') else 'off'} "
        f"postcard_every={flags.get('postcard_every', 0)}"
    )

    metrics = snapshot.get("metrics", {})
    lines.append(f"\n== metrics ({len(metrics)} families) ==")
    for name in sorted(metrics):
        family = metrics[name]
        lines.append(f"  {family['kind']:<9} {name}")
        for series in family.get("series", []):
            labels = series.get("labels") or {}
            label_text = (
                "{" + ", ".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
                if labels else ""
            )
            lines.append(
                f"    {label_text or '(no labels)'} "
                f"{_format_value(series.get('value'))}"
            )

    spans = snapshot.get("spans", [])
    by_name: dict = {}
    for span in spans:
        entry = by_name.setdefault(span.get("name"), [0, 0.0])
        entry[0] += 1
        entry[1] += span.get("duration") or 0.0
    lines.append(f"\n== spans ({len(spans)} recorded) ==")
    for name in sorted(by_name):
        count, total = by_name[name]
        lines.append(f"  {name:<28} x{count:<5} total {total * 1000:.2f}ms")

    cards = snapshot.get("postcards", [])
    lines.append(f"\n== postcards ({len(cards)} sampled packets) ==")
    for card in cards[:10]:
        hops = sum(
            1 for event in card.get("events", []) if event.get("ev") == "hop"
        )
        outcomes = ",".join(
            f"{d.get('egress')}@{d.get('hops')}h"
            for d in card.get("deliveries", [])
        ) or "none"
        lines.append(
            f"  pkt#{card.get('index'):<6} port {card.get('port'):<4} "
            f"{len(card.get('events', []))} events ({hops} hops) "
            f"-> {outcomes}"
        )
    if len(cards) > 10:
        lines.append(f"  ... and {len(cards) - 10} more")
    return "\n".join(lines)


def _cmd_dump(args) -> int:
    snapshot = _load(args.path)
    if args.json:
        print(json.dumps(snapshot, indent=2, default=repr))
    elif args.prometheus:
        print(snapshot.get("prometheus", ""), end="")
    else:
        print(_render(snapshot))
    return 0


def _cmd_watch(args) -> int:
    try:
        while True:
            try:
                snapshot = _load(args.path)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"(waiting for snapshot: {exc})")
            else:
                print("\x1b[2J\x1b[H", end="")
                print(_render(snapshot))
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_check_prom(args) -> int:
    registry = obs.MetricsRegistry()
    registry.counter("snap_selftest_total", "self-test counter").labels(
        kind="a b", path='quo"ted\\slash'
    ).inc(3)
    registry.gauge("snap_selftest_gauge", "self-test gauge").set(-2.5)
    hist = registry.histogram("snap_selftest_seconds", "self-test histogram")
    for value in (0.0001, 0.003, 0.2, 5.0, 1000.0):
        hist.labels(stage="x").observe(value)
    text = registry.render_prometheus()
    problems = obs.validate_prometheus_text(text)
    # The live registry must pass too — whatever the process recorded.
    problems += obs.validate_prometheus_text(obs.REGISTRY.render_prometheus())
    if problems:
        for problem in problems:
            print(f"PROM-FORMAT: {problem}", file=sys.stderr)
        return 1
    print(
        f"prometheus exporter ok "
        f"({len(text.splitlines())} self-test lines valid)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="SNAP telemetry snapshot tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="render a telemetry snapshot")
    dump.add_argument("path", nargs="?", default=None)
    dump.add_argument("--json", action="store_true", help="raw JSON")
    dump.add_argument(
        "--prometheus", action="store_true", help="Prometheus text format"
    )
    dump.set_defaults(fn=_cmd_dump)

    watch = sub.add_parser("watch", help="follow a snapshot file live")
    watch.add_argument("path", nargs="?", default=None)
    watch.add_argument("--interval", type=float, default=2.0)
    watch.set_defaults(fn=_cmd_watch)

    check = sub.add_parser(
        "check-prom", help="validate the Prometheus exporter output"
    )
    check.set_defaults(fn=_cmd_check_prom)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
