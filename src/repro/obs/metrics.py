"""Process-wide metrics registry: counters, gauges, histograms.

The one place every layer of the system — controller, the five execution
engines, the cluster wire, the replay harness — reports quantitative
signals.  Design constraints, in order:

1. **Near-zero cost when disabled.**  A disabled registry's record
   methods are one attribute read and a branch; nothing allocates,
   nothing locks.  Hot paths additionally hoist the handle lookup out of
   their loops (``counter(...).labels(...)`` once per run, ``inc`` per
   event), so per-packet work never touches the registry at all.
2. **Thread-safe.**  Engines hammer the same counters from parallel
   lanes.  Updates are *lock-striped*: each labeled child hashes onto
   one of :data:`_STRIPES` locks, so two lanes bumping different
   counters almost never contend, while increments on the same child
   are still atomic.
3. **Stable export.**  :meth:`MetricsRegistry.render_prometheus` emits
   the Prometheus text exposition format (``# HELP``/``# TYPE`` plus
   samples, histograms as ``_bucket``/``_sum``/``_count``);
   :meth:`MetricsRegistry.snapshot` returns the same data as a
   JSON-able dict.  Both are consistent-enough snapshots: samples are
   read under the stripe locks, families under the registry lock.

Metric and label *names* must match ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (the
Prometheus grammar); violations raise at registration time, not at
scrape time.  Label *values* are arbitrary strings and are escaped on
export.
"""

from __future__ import annotations

import json
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: exponential from 100µs to ~100s — wide
#: enough for compile phases (ms) and cluster round trips (s) alike.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 100.0,
)

#: Lock stripes shared by every child in the process.  16 is plenty: a
#: run uses a handful of hot children, and a stripe lock is held for a
#: couple of bytecodes.
_STRIPE_COUNT = 16
_STRIPES = tuple(threading.Lock() for _ in range(_STRIPE_COUNT))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value) -> str:
    # Prometheus floats: integers render without the trailing ".0".
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_suffix(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels
    )
    return "{" + inner + "}"


class _Child:
    """One (metric, label-set) time series."""

    __slots__ = ("_metric", "labels", "_lock")

    def __init__(self, metric: "Metric", labels: tuple):
        self._metric = metric
        self.labels = labels  # sorted tuple of (key, value) pairs
        self._lock = _STRIPES[hash((metric.name, labels)) % _STRIPE_COUNT]


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, metric, labels):
        super().__init__(metric, labels)
        self.value = 0

    def inc(self, amount=1) -> None:
        if not self._metric.registry.enabled:
            return
        with self._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, metric, labels):
        super().__init__(metric, labels)
        self.value = 0

    def set(self, value) -> None:
        if not self._metric.registry.enabled:
            return
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        if not self._metric.registry.enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, metric, labels):
        super().__init__(metric, labels)
        self.bucket_counts = [0] * len(metric.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        if not self._metric.registry.enabled:
            return
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self._metric.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break
            # Values beyond the last bound land only in +Inf (count).

    def cumulative(self) -> list:
        """Cumulative per-bucket counts, Prometheus style (no +Inf)."""
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out


_CHILD_TYPES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
    "histogram": _HistogramChild,
}


class Metric:
    """One metric family: a name, a kind, and its labeled children."""

    __slots__ = ("name", "kind", "help", "registry", "buckets", "_children",
                 "_lock")

    def __init__(self, name: str, kind: str, help: str, registry,
                 buckets=None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.registry = registry
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        self._children: dict = {}
        self._lock = threading.Lock()

    def labels(self, **labels):
        """The child for this label set (created on first use, cached)."""
        key = tuple(sorted(labels.items()))
        child = self._children.get(key)
        if child is None:
            for label_name in labels:
                if not _LABEL_RE.match(label_name):
                    raise ValueError(f"invalid label name {label_name!r}")
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _CHILD_TYPES[self.kind](self, key)
                    self._children[key] = child
        return child

    # Unlabeled convenience: metric.inc() == metric.labels().inc().

    def inc(self, amount=1) -> None:
        self.labels().inc(amount)

    def set(self, value) -> None:
        self.labels().set(value)

    def observe(self, value) -> None:
        self.labels().observe(value)

    def children(self) -> list:
        with self._lock:
            return list(self._children.values())

    def __repr__(self):
        return f"Metric({self.kind} {self.name}, {len(self._children)} series)"


class MetricsRegistry:
    """Registry of metric families; usually the process-wide default.

    ``enabled`` gates every record method.  Registration is always
    allowed (so module-level handles can be created before telemetry is
    configured); a handle fetched while disabled starts recording the
    moment the registry is enabled.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict = {}
        self._lock = threading.Lock()

    def _register(self, name: str, kind: str, help: str, buckets=None):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {kind}"
                    )
                return family
            family = Metric(name, kind, help, self, buckets=buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "") -> Metric:
        return self._register(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Metric:
        return self._register(name, "gauge", help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Metric:
        return self._register(name, "histogram", help, buckets=buckets)

    def families(self) -> list:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (tests; never called on the hot path)."""
        with self._lock:
            self._families.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able dump: ``{name: {kind, help, series: [...]}}``."""
        out: dict = {}
        for family in self.families():
            series = []
            for child in family.children():
                with child._lock:
                    if family.kind == "histogram":
                        value = {
                            "buckets": dict(
                                zip(map(str, family.buckets),
                                    child.cumulative())
                            ),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    else:
                        value = child.value
                series.append({"labels": dict(child.labels), "value": value})
            out[family.name] = {
                "kind": family.kind, "help": family.help, "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                suffix = _label_suffix(child.labels)
                with child._lock:
                    if family.kind == "histogram":
                        cumulative = child.cumulative()
                        total, summed = child.count, child.sum
                        for bound, count in zip(family.buckets, cumulative):
                            le = _label_suffix(
                                child.labels + (("le", _format_value(
                                    float(bound))),)
                            )
                            lines.append(
                                f"{family.name}_bucket{le} {count}"
                            )
                        inf = _label_suffix(child.labels + (("le", "+Inf"),))
                        lines.append(f"{family.name}_bucket{inf} {total}")
                        lines.append(
                            f"{family.name}_sum{suffix} "
                            f"{_format_value(summed)}"
                        )
                        lines.append(f"{family.name}_count{suffix} {total}")
                    else:
                        lines.append(
                            f"{family.name}{suffix} "
                            f"{_format_value(child.value)}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self._families)} families, {state})"


#: The process-wide registry every instrumented layer reports into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Metric:
    """A counter family on the process-wide registry."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Metric:
    """A gauge family on the process-wide registry."""
    return REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "", buckets=None) -> Metric:
    """A histogram family on the process-wide registry."""
    return REGISTRY.histogram(name, help, buckets=buckets)


# -- Prometheus text-format validation (CI lint hook) -------------------------

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                       # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|NaN)"
    r"(?: \d+)?$"                                      # optional timestamp
)


def validate_prometheus_text(text: str) -> list:
    """Check ``text`` against the exposition grammar; returns problems.

    A lightweight validator for the CI lint job (promtool without the
    binary): every non-comment line must be a well-formed sample, every
    ``# TYPE`` must name a known kind, and histogram families must end
    with the mandatory ``_sum``/``_count``/``+Inf`` samples.
    """
    problems: list = []
    histogram_names: set = set()
    seen_samples: set = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {number}: malformed TYPE line")
            elif parts[3] == "histogram":
                histogram_names.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        seen_samples.add(line.split("{")[0].split(" ")[0])
    for name in sorted(histogram_names):
        for suffix in ("_bucket", "_sum", "_count"):
            if name + suffix not in seen_samples:
                problems.append(
                    f"histogram {name} is missing its {suffix} samples"
                )
    return problems
