"""Structured trace spans with parent ids and a ring-buffer sink.

A *span* is a named, timed unit of work (a compile phase, a controller
event, one engine lane, one cluster round trip).  Spans nest: the
tracer keeps a per-thread stack of open spans, so a span opened inside
another automatically records the outer span's id as its ``parent_id``.
Work that hops threads or processes (lane pools, cluster workers)
passes an explicit parent — either a :class:`Span` or the dict from
:func:`current_trace_context` carried over the wire — and the receiving
side's spans stitch back into the same trace.

Finished spans land in a bounded ring buffer as plain dicts (JSONL-
ready); nothing is written to disk unless a snapshot is requested (see
:func:`repro.obs.write_snapshot`).  Span ids embed the pid so ids from
worker processes never collide with the parent's.

When tracing is disabled, :meth:`Tracer.span` yields a shared no-op
span: no allocation beyond the generator frame, no clock reads, no
locking.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager


class Span:
    """One open unit of work; becomes a dict in the ring when it ends."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs",
                 "events", "start", "end")

    def __init__(self, trace_id, span_id, parent_id, name, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.events: list = []
        self.start = time.perf_counter()
        self.end = None

    def set_attr(self, key, value) -> None:
        self.attrs[key] = value

    def add_event(self, name, **attrs) -> None:
        self.events.append({"name": name, **attrs})

    def context(self) -> dict:
        """Wire-portable reference to this span (for cross-process work)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> dict:
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": (self.end - self.start) if self.end else None,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        return record

    def __repr__(self):
        return f"Span({self.name}, id={self.span_id})"


class _NoopSpan:
    """Shared do-nothing span yielded while tracing is disabled."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = None

    def set_attr(self, key, value) -> None:
        pass

    def add_event(self, name, **attrs) -> None:
        pass

    def context(self):
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Span factory + bounded ring of finished spans."""

    def __init__(self, enabled: bool = True, ring_size: int = 4096):
        self.enabled = enabled
        self.ring_size = ring_size
        self._ring: list = []
        self._ring_lock = threading.Lock()
        self._local = threading.local()
        self._seq = itertools.count(1)

    # -- id plumbing -------------------------------------------------------

    def _new_id(self) -> str:
        return f"{os.getpid():x}-{next(self._seq):x}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self):
        """The innermost open span on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- span lifecycle ----------------------------------------------------

    @contextmanager
    def span(self, name: str, parent=None, **attrs):
        """Open a span; ``parent`` overrides the thread-local parent.

        ``parent`` may be a :class:`Span`, a context dict from
        :meth:`Span.context` / :func:`current_trace_context`, or
        ``None`` (inherit from this thread's innermost open span).
        """
        if not self.enabled:
            yield NOOP_SPAN
            return
        stack = self._stack()
        if parent is None:
            parent = stack[-1] if stack else None
        if parent is None:
            trace_id, parent_id = self._new_id(), None
        elif isinstance(parent, dict):
            trace_id = parent.get("trace_id") or self._new_id()
            parent_id = parent.get("span_id")
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(trace_id, self._new_id(), parent_id, name, attrs)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end = time.perf_counter()
            self._record(span.to_dict())

    def add_event(self, name, **attrs) -> None:
        """Annotate this thread's innermost open span (no-op if none)."""
        span = self.current_span()
        if span is not None:
            span.add_event(name, **attrs)

    # -- sink --------------------------------------------------------------

    def _record(self, record: dict) -> None:
        with self._ring_lock:
            self._ring.append(record)
            overflow = len(self._ring) - self.ring_size
            if overflow > 0:
                del self._ring[:overflow]

    def adopt(self, records) -> None:
        """Ingest finished-span dicts produced elsewhere (worker replies)."""
        if not self.enabled or not records:
            return
        for record in records:
            if isinstance(record, dict) and "span_id" in record:
                self._record(record)

    def spans(self, name: str = None) -> list:
        """Finished spans, oldest first (optionally filtered by name)."""
        with self._ring_lock:
            out = list(self._ring)
        if name is not None:
            out = [s for s in out if s["name"] == name]
        return out

    def reset(self) -> None:
        with self._ring_lock:
            self._ring.clear()

    # -- worker-side capture ----------------------------------------------

    @contextmanager
    def capture(self):
        """Collect spans finished inside the block (plus the ring copy).

        Used by worker daemons / pool workers to slice out just the
        spans belonging to one job so they can be shipped back in the
        reply.  Safe because each worker handles one job at a time per
        thread; concurrent captures on *different* threads see each
        other's spans, so keep captures to single-threaded contexts.
        """
        captured: list = []
        with self._ring_lock:
            mark = len(self._ring)
        yield captured
        with self._ring_lock:
            captured.extend(self._ring[mark:])


#: Process-wide tracer; enabled/disabled by :func:`repro.obs.configure`.
TRACER = Tracer()


def current_trace_context() -> dict:
    """Wire-portable context of the current span, or ``None``."""
    span = TRACER.current_span()
    return span.context() if span is not None else None
