"""Per-packet postcards: sampled hop-by-hop execution traces.

The in-network-telemetry idea (INT "postcards") applied to our software
data plane: a sampled fraction of packets records, as it executes, the
switches it visited, every state table it tested or wrote, and why it
was finally emitted or dropped.  The record — the *postcard* — lands in
a bounded ring and in the current trace span, where
:func:`repro.obs.write_snapshot` exports it.

Sampling is **deterministic on the global arrival index** (``index %
every == 0``), never random, for two reasons:

* the same packets are sampled no matter which engine runs the trace or
  how it was sharded (batch entries carry their global index end to
  end, including across the cluster wire);
* a sampled run is **byte-identical** to an unsampled one — the traced
  path executes exactly the same lowered opcodes against the same state
  (see :meth:`repro.dataplane.netasm.SwitchProgram.process_traced` and
  the generic :meth:`repro.dataplane.network.Network._run` walk, which
  the compiled lanes are property-tested equivalent to), so turning
  postcards on can never change what the network does, only what it
  remembers.

When no sampler is configured (the default), every hook is a single
``None`` check on a module global — the per-packet hot paths pay
nothing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.metrics import counter
from repro.obs.tracing import TRACER

_POSTCARDS_TOTAL = counter(
    "snap_postcards_total", "Sampled packet postcards recorded"
)

#: Bounded postcard ring (finished postcard dicts, oldest first).
RING_SIZE = 512
_RING: list = []
_RING_LOCK = threading.Lock()

#: The active sampler, or None (sampling off).  A module global read
#: once per run/lane by the engines; None is the zero-cost path.
_SAMPLER = None


class PostcardSampler:
    """Deterministic 1-in-``every`` sampling by global arrival index."""

    __slots__ = ("every",)

    def __init__(self, every: int):
        if every < 1:
            raise ValueError(f"postcard_every must be >= 1, got {every}")
        self.every = every

    def should(self, index: int) -> bool:
        return index % self.every == 0

    def __repr__(self):
        return f"PostcardSampler(every={self.every})"


def configure_sampling(every: int) -> None:
    """Install (every >= 1) or remove (0) the process-wide sampler."""
    global _SAMPLER
    _SAMPLER = PostcardSampler(every) if every else None


def active_sampler():
    """The process-wide sampler, or None.  Engines fetch this once per
    run and skip every sampling branch when it is None."""
    return _SAMPLER


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class PostcardRecorder:
    """Collects one sampled packet's events while it executes.

    Handed to :meth:`Network._run` as ``recorder=``; the traced
    interpreter and the forwarding loop call the event methods below.
    """

    __slots__ = ("index", "port", "events")

    def __init__(self, index: int, port: int):
        self.index = index
        self.port = port
        self.events: list = []

    # -- called from the data plane ---------------------------------------

    def process(self, switch: str) -> None:
        self.events.append({"ev": "process", "switch": switch})

    def state_test(self, var: str, key, value, result: bool) -> None:
        self.events.append({
            "ev": "state_test", "var": var, "key": _jsonable(key),
            "value": _jsonable(value), "result": bool(result),
        })

    def state_write(self, var: str, key, value) -> None:
        self.events.append({
            "ev": "state_write", "var": var, "key": _jsonable(key),
            "value": _jsonable(value),
        })

    def state_delta(self, var: str, key, delta) -> None:
        self.events.append({
            "ev": "state_delta", "var": var, "key": _jsonable(key),
            "delta": delta,
        })

    def outcome(self, kind: str, var: str | None = None) -> None:
        event = {"ev": kind}
        if var is not None:
            event["var"] = var
        self.events.append(event)

    def hop(self, switch: str, nxt: str) -> None:
        self.events.append({"ev": "hop", "link": [switch, nxt]})

    # -- finalization ------------------------------------------------------

    def to_dict(self, records) -> dict:
        deliveries = [
            {"egress": r.egress, "hops": r.hops} for r in records
        ]
        return {
            "index": self.index,
            "port": self.port,
            "events": self.events,
            "deliveries": deliveries,
        }


def _record(card: dict) -> None:
    with _RING_LOCK:
        _RING.append(card)
        overflow = len(_RING) - RING_SIZE
        if overflow > 0:
            del _RING[:overflow]
    _POSTCARDS_TOTAL.inc()
    # Mirror onto the current span (engine lane / worker job), so traces
    # and postcards cross-reference without a join key.
    TRACER.add_event(
        "postcard", index=card["index"], port=card["port"],
        events=len(card["events"]),
    )


def run_traced(network, packet, port: int, index: int, links=None) -> list:
    """Run one sampled packet through the generic traced walk.

    Returns exactly the delivery records the untraced path produces (the
    compiled lanes are property-tested equivalent to this walk, and the
    traced interpreter executes the identical opcode effects).  Link
    counts go to ``links`` when given (thread lanes keep them local and
    merge once) or to the network's own counters.
    """
    recorder = PostcardRecorder(index, port)
    records = network._run(
        network._new_arrivals(packet, port), links=links, recorder=recorder
    )
    _record(recorder.to_dict(records))
    return records


def record_summary(index: int, port: int, records, lane: str) -> None:
    """A delivery-level postcard for lanes without a traced walk.

    The columnar tier executes whole batches as masked column ops — no
    per-packet interpreter to hang events on — so its sampled packets
    record what is known after the fact: the lane kind and each copy's
    egress and hop count.
    """
    card = PostcardRecorder(index, port)
    card.events.append({"ev": "lane", "kind": lane})
    _record(card.to_dict(records))


def postcards() -> list:
    """Recorded postcards, oldest first."""
    with _RING_LOCK:
        return list(_RING)


def reset() -> None:
    with _RING_LOCK:
        _RING.clear()


@contextmanager
def capture():
    """Collect postcards recorded inside the block.

    The worker-side slicing window (process-pool workers, cluster
    daemons serve one job at a time), so a job's postcards can ride back
    in its reply and be adopted by the parent's ring.
    """
    with _RING_LOCK:
        mark = len(_RING)
    captured: list = []
    yield captured
    with _RING_LOCK:
        captured.extend(_RING[mark:])


def adopt(cards) -> None:
    """Ingest postcards recorded elsewhere (worker replies).

    Counts them here too: the worker recorded into its own process's
    registry, which dies with the worker — the parent's counter is the
    one a scrape sees.
    """
    if not cards:
        return
    with _RING_LOCK:
        _RING.extend(cards)
        overflow = len(_RING) - RING_SIZE
        if overflow > 0:
            del _RING[:overflow]
    _POSTCARDS_TOTAL.inc(len(cards))


@contextmanager
def sampling(every: int):
    """Temporarily install a sampler (worker-side job scope; tests)."""
    global _SAMPLER
    previous = _SAMPLER
    _SAMPLER = PostcardSampler(every) if every else None
    try:
        yield
    finally:
        _SAMPLER = previous
