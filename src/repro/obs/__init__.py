"""Unified telemetry for the SNAP reproduction.

One subsystem, three signal kinds, every layer reports into it:

* **Metrics** (:mod:`repro.obs.metrics`) — process-wide counters,
  gauges, and histograms with labels; Prometheus-text and JSON export.
* **Trace spans** (:mod:`repro.obs.tracing`) — nested, timed units of
  work (compile phases, controller events, engine lanes, cluster round
  trips) in a bounded ring, with parent ids propagated across threads,
  processes, and the cluster wire.
* **Postcards** (:mod:`repro.obs.postcards`) — sampled per-packet
  hop/state/outcome traces through the data plane.

Configuration is one value, resolved in this order: an explicit
:class:`TelemetryConfig` (or bool/"on"/"off") passed to
:func:`configure` — e.g. through ``CompilerOptions(telemetry=...)`` —
else the environment:

=========================   ===========================================
``SNAP_TELEMETRY``          ``on``/``1`` (default) or ``off``/``0`` —
                            master switch for metrics + tracing
``SNAP_TELEMETRY_POSTCARDS``  sample every Nth packet (default ``0``,
                            off — sampling is opt-in)
``SNAP_TELEMETRY_FILE``     write a JSON snapshot here at process exit
                            (and whenever :func:`write_snapshot` is
                            called without a path)
=========================   ===========================================

``python -m repro.obs dump <file>`` renders a written snapshot;
``watch`` follows it live; ``check-prom`` self-tests the Prometheus
exporter (the CI lint hook).
"""

from __future__ import annotations

import atexit
import json
import os
import sys
from dataclasses import dataclass

from repro.obs import postcards
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    validate_prometheus_text,
)
from repro.obs.postcards import PostcardSampler, active_sampler
from repro.obs.runstats import RunStats
from repro.obs.tracing import TRACER, Span, Tracer, current_trace_context

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "PostcardSampler",
    "RunStats",
    "Span",
    "TelemetryConfig",
    "Tracer",
    "active_sampler",
    "configure",
    "counter",
    "current_config",
    "current_trace_context",
    "gauge",
    "histogram",
    "postcards",
    "resolve_config",
    "validate_prometheus_text",
    "write_snapshot",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """One resolved telemetry configuration."""

    metrics: bool = True
    tracing: bool = True
    #: Sample every Nth packet as a postcard; 0 = off.
    postcard_every: int = 0
    #: Where :func:`write_snapshot` (and the atexit flush) writes.
    snapshot_path: str | None = None

    def __post_init__(self):
        if not isinstance(self.postcard_every, int) or self.postcard_every < 0:
            raise ValueError(
                f"postcard_every must be a non-negative int, "
                f"got {self.postcard_every!r}"
            )


_TRUE = frozenset(("1", "on", "true", "yes"))
_FALSE = frozenset(("0", "off", "false", "no"))


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if raw in _TRUE:
        return True
    if raw in _FALSE:
        return False
    return default


def _env_config() -> TelemetryConfig:
    enabled = _env_flag("SNAP_TELEMETRY", True)
    try:
        every = int(os.environ.get("SNAP_TELEMETRY_POSTCARDS", "0") or 0)
    except ValueError:
        every = 0
    return TelemetryConfig(
        metrics=enabled,
        tracing=enabled,
        postcard_every=max(0, every),
        snapshot_path=os.environ.get("SNAP_TELEMETRY_FILE") or None,
    )


def resolve_config(source=None) -> TelemetryConfig:
    """Normalize any accepted telemetry spec to a :class:`TelemetryConfig`.

    ``None`` → the environment; a bool or ``"on"``/``"off"`` → everything
    on/off (postcards still default off — they are opt-in by count, not
    by switch); a :class:`TelemetryConfig` → itself.
    """
    if source is None:
        return _env_config()
    if isinstance(source, TelemetryConfig):
        return source
    if isinstance(source, bool):
        return TelemetryConfig(metrics=source, tracing=source)
    if isinstance(source, str):
        lowered = source.strip().lower()
        if lowered in _TRUE:
            return TelemetryConfig(metrics=True, tracing=True)
        if lowered in _FALSE:
            return TelemetryConfig(metrics=False, tracing=False)
        raise ValueError(
            f"telemetry must be a bool, 'on'/'off', or a TelemetryConfig, "
            f"got {source!r}"
        )
    raise ValueError(
        f"telemetry must be a bool, 'on'/'off', or a TelemetryConfig, "
        f"got {source!r}"
    )


_CURRENT: TelemetryConfig | None = None
_CONFIGURED_PID: int | None = None


def configure(source=None) -> TelemetryConfig:
    """Apply a telemetry configuration process-wide and return it.

    Flips the shared registry/tracer enabled flags and installs or
    removes the postcard sampler.  Called with ``None`` it (re)applies
    the environment defaults — which is also what happens at import.
    """
    global _CURRENT, _CONFIGURED_PID
    config = resolve_config(source)
    REGISTRY.enabled = config.metrics
    TRACER.enabled = config.tracing
    postcards.configure_sampling(config.postcard_every)
    _CURRENT = config
    _CONFIGURED_PID = os.getpid()
    return config


def current_config() -> TelemetryConfig:
    """The configuration most recently applied by :func:`configure`."""
    return _CURRENT if _CURRENT is not None else configure()


def snapshot_dict() -> dict:
    """Everything the telemetry layer currently holds, JSON-able."""
    return {
        "meta": {
            "pid": os.getpid(),
            "python": sys.version.split()[0],
            "telemetry": {
                "metrics": REGISTRY.enabled,
                "tracing": TRACER.enabled,
                "postcard_every": getattr(active_sampler(), "every", 0),
            },
        },
        "metrics": REGISTRY.snapshot(),
        "prometheus": REGISTRY.render_prometheus(),
        "spans": TRACER.spans(),
        "postcards": postcards.postcards(),
    }


def write_snapshot(path: str | None = None) -> str | None:
    """Atomically write the live snapshot as JSON; returns the path.

    ``path=None`` uses the configured ``snapshot_path`` (i.e.
    ``SNAP_TELEMETRY_FILE``); with neither, nothing is written and
    ``None`` is returned.
    """
    if path is None:
        path = current_config().snapshot_path
    if not path:
        return None
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(snapshot_dict(), handle, indent=2, default=repr)
        handle.write("\n")
    os.replace(tmp, path)
    return path


@atexit.register
def _flush_snapshot_at_exit() -> None:  # pragma: no cover - exit path
    config = _CURRENT
    # The pid check keeps forked pool workers from clobbering the
    # parent's snapshot; spawned daemons disable the path explicitly
    # (see repro.cluster.worker.main).
    if (
        config is not None
        and config.snapshot_path
        and os.getpid() == _CONFIGURED_PID
    ):
        try:
            write_snapshot(config.snapshot_path)
        except OSError:
            pass


# Apply the environment defaults at import, so the metrics/tracing
# enabled flags are right before the first instrumented call.
configure()
