"""The one shape every engine's ``last_run_stats`` takes.

Before this module, the three parallel engines each grew their own stats
dict — sharded (lanes/parallelism/collapse), process (+ state and spec
bytes), cluster (+ wire bytes and requeues) — and every consumer
hard-coded one shape.  :class:`RunStats` is the union, typed: fields an
engine does not produce stay ``None`` and are **omitted** from
:meth:`to_dict`, so each engine's visible key set is exactly what it was
(benchmarks and tests that do ``dict(engine.last_run_stats)`` or
``stats["lanes"]`` see no difference).

The mapping protocol below makes a ``RunStats`` read like the dict it
replaced; writes go through attributes (``stats.replica_log_bytes =
...``), which is how the engines fill in late-arriving fields (replica
logs are only counted after every lane merged).

:meth:`publish` pushes the run's numbers into the process-wide metrics
registry (per-engine labels), which is what makes the benches' one-shot
dicts into scrapeable time series.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs.metrics import counter, gauge

_RUNS_TOTAL = counter(
    "snap_engine_runs_total", "Data-plane engine runs completed"
)
_PACKETS_TOTAL = counter(
    "snap_engine_packets_total", "Packets executed by data-plane engines"
)
_LANES = gauge("snap_engine_lanes", "Lanes used by the most recent run")
_REPLICA_LOG_BYTES = counter(
    "snap_replica_log_bytes_total", "Replica update-log bytes merged"
)
_WIRE_PAYLOAD_BYTES = counter(
    "snap_engine_payload_bytes_total",
    "Per-run payload bytes shipped to remote lanes",
)


@dataclass
class RunStats:
    """What one engine run planned and shipped.  ``None`` = not produced
    by this engine/path; omitted from the dict view."""

    # Every engine
    lanes: int | None = None
    # Thread lanes (sharded and the vector engines riding on it)
    parallelism: int | None = None
    collapse_reasons: dict | None = None
    replicated_vars: list | None = None
    replica_reasons: dict | None = None
    replica_log_entries: int | None = None
    replica_log_bytes: int | None = None
    # Process pool
    state_bytes: int | None = None
    spec_bytes: int | None = None
    # Cluster
    workers: int | None = None
    program_bytes: int | None = None
    network_bytes: int | None = None
    payload_bytes: int | None = None
    requeues: int | None = None

    # -- the dict the engines used to expose -------------------------------

    def to_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    def keys(self):
        return self.to_dict().keys()

    def items(self):
        return self.to_dict().items()

    def get(self, key, default=None):
        value = getattr(self, key, None) if key in _FIELD_NAMES else None
        return default if value is None else value

    def __getitem__(self, key):
        if key in _FIELD_NAMES:
            value = getattr(self, key)
            if value is not None:
                return value
        raise KeyError(key)

    def __contains__(self, key) -> bool:
        return key in _FIELD_NAMES and getattr(self, key) is not None

    def __iter__(self):
        return iter(self.to_dict())

    def __len__(self) -> int:
        return len(self.to_dict())

    def __bool__(self) -> bool:
        # An engine that has not run yet exposes {} today; an empty
        # RunStats must stay falsy for those callers.
        return len(self.to_dict()) > 0

    # -- registry ----------------------------------------------------------

    def publish(self, engine: str, packets: int | None = None) -> None:
        """Report this run to the process-wide metrics registry."""
        _RUNS_TOTAL.labels(engine=engine).inc()
        if packets:
            _PACKETS_TOTAL.labels(engine=engine).inc(packets)
        if self.lanes is not None:
            _LANES.labels(engine=engine).set(self.lanes)
        if self.replica_log_bytes:
            _REPLICA_LOG_BYTES.labels(engine=engine).inc(
                self.replica_log_bytes
            )
        if self.payload_bytes:
            _WIRE_PAYLOAD_BYTES.labels(engine=engine).inc(self.payload_bytes)


_FIELD_NAMES = frozenset(f.name for f in fields(RunStats))
