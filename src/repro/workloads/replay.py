"""Replaying traces through the data plane and the reference semantics.

:func:`replay` drives a trace through a simulated network and summarizes
deliveries; :func:`replay_obs` runs the same trace through ``eval`` on the
one-big-switch, which is useful both for expected-behaviour tests and for
verifying the distributed realization against the specification.
"""

from __future__ import annotations

from repro.dataplane.engine import get_engine
from repro.dataplane.network import Network
from repro.lang import ast
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.obs.metrics import counter
from repro.obs.tracing import TRACER
from repro.workloads.traces import Trace

_REPLAY_PACKETS = counter(
    "snap_replay_packets_total", "Packets injected by trace replays"
)


class ReplayStats:
    """Outcome summary of one trace replay.

    Two delivery-rate views exist because multicast makes them diverge:
    ``delivered``/``dropped`` count per-*copy* records (one injected
    packet can fan out into several), while ``sent`` counts injected
    packets.  :attr:`delivery_rate` is the packet-level reading — the
    fraction of injected packets with at least one delivered copy — and
    :attr:`copy_delivery_rate` is the per-copy ratio.  For unicast
    traffic with no drops the two agree.
    """

    def __init__(self):
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        #: Injected packets with >= 1 delivered copy (drives delivery_rate).
        self.packets_delivered = 0
        self.per_egress: dict[int, int] = {}
        self.total_hops = 0

    def record(self, records) -> None:
        self.sent += 1
        any_delivered = False
        for record in records:
            if record.egress is None:
                self.dropped += 1
            else:
                any_delivered = True
                self.delivered += 1
                self.per_egress[record.egress] = (
                    self.per_egress.get(record.egress, 0) + 1
                )
                self.total_hops += record.hops
        if any_delivered:
            self.packets_delivered += 1

    @property
    def delivery_rate(self) -> float:
        """Fraction of *injected packets* with a delivered copy."""
        return self.packets_delivered / self.sent if self.sent else 0.0

    @property
    def copy_delivery_rate(self) -> float:
        """Fraction of *packet copies* that reached an egress."""
        total = self.delivered + self.dropped
        return self.delivered / total if total else 0.0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    def __repr__(self):
        return (
            f"ReplayStats(sent={self.sent}, delivered={self.delivered} copies, "
            f"dropped={self.dropped}, delivery_rate={self.delivery_rate:.2f}, "
            f"copy_delivery_rate={self.copy_delivery_rate:.2f}, "
            f"mean_hops={self.mean_hops:.2f})"
        )


def replay(trace: Trace, network: Network, engine=None) -> ReplayStats:
    """Drive the trace through the network; returns delivery statistics.

    ``engine`` picks the execution engine (``"sequential"`` |
    ``"sharded"`` | ``"process"`` | ``"cluster"`` | ``"vector"`` |
    ``"vector-jit"`` | any name added via
    :func:`repro.dataplane.engine.register_engine` | an engine instance
    — stateful names like ``"process"`` and ``"cluster"`` resolve to one
    shared pool/daemon-set across calls); when ``None`` the network's
    ``default_engine`` applies
    (``CompilerOptions.engine`` for networks obtained from
    :meth:`SnapController.network`).  Every engine is
    delivery-equivalent to per-packet :meth:`~Network.inject` calls.
    """
    if engine is None:
        engine = getattr(network, "default_engine", "sequential")
    runner = get_engine(engine)
    stats = ReplayStats()
    with TRACER.span(
        "replay", engine=getattr(runner, "name", str(engine))
    ) as span:
        for records in runner.run(network, trace):
            stats.record(records)
        span.set_attr("packets", stats.sent)
        span.set_attr("delivered", stats.delivered)
    _REPLAY_PACKETS.inc(stats.sent)
    return stats


def replay_obs(
    trace: Trace, policy: ast.Policy, store: Store | None = None, engine=None
):
    """Run the trace through the OBS reference semantics.

    Returns ``(final_store, outputs)`` where outputs is a list of
    per-packet frozensets.  ``engine`` selects the mirror engine
    (``"sequential"`` | ``"batched"`` | ``"process"`` | ``"cluster"`` |
    an instance, see :mod:`repro.workloads.obs_engine`); every engine
    returns exactly the sequential mirror's ``(store, outputs)``.
    """
    from repro.workloads.obs_engine import get_obs_engine

    if store is None:
        store = Store(ast.infer_state_defaults(policy))
    runner = get_obs_engine(engine)
    return runner.run(list(trace), policy, store)
