"""Replaying traces through the data plane and the reference semantics.

:func:`replay` drives a trace through a simulated network and summarizes
deliveries; :func:`replay_obs` runs the same trace through ``eval`` on the
one-big-switch, which is useful both for expected-behaviour tests and for
verifying the distributed realization against the specification.
"""

from __future__ import annotations

from repro.dataplane.engine import get_engine
from repro.dataplane.network import Network
from repro.lang import ast
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.workloads.traces import Trace


class ReplayStats:
    """Outcome summary of one trace replay."""

    def __init__(self):
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.per_egress: dict[int, int] = {}
        self.total_hops = 0

    def record(self, records) -> None:
        self.sent += 1
        for record in records:
            if record.egress is None:
                self.dropped += 1
            else:
                self.delivered += 1
                self.per_egress[record.egress] = (
                    self.per_egress.get(record.egress, 0) + 1
                )
                self.total_hops += record.hops

    @property
    def delivery_rate(self) -> float:
        total = self.delivered + self.dropped
        return self.delivered / total if total else 0.0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    def __repr__(self):
        return (
            f"ReplayStats(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.dropped}, mean_hops={self.mean_hops:.2f})"
        )


def replay(trace: Trace, network: Network, engine=None) -> ReplayStats:
    """Drive the trace through the network; returns delivery statistics.

    ``engine`` picks the execution engine (``"sequential"`` |
    ``"sharded"`` | an engine instance); when ``None`` the network's
    ``default_engine`` applies (``CompilerOptions.engine`` for networks
    obtained from :meth:`SnapController.network`).  Every engine is
    delivery-equivalent to per-packet :meth:`~Network.inject` calls.
    """
    if engine is None:
        engine = getattr(network, "default_engine", "sequential")
    runner = get_engine(engine)
    stats = ReplayStats()
    for records in runner.run(network, trace):
        stats.record(records)
    return stats


def replay_obs(trace: Trace, policy: ast.Policy, store: Store | None = None):
    """Run the trace through the OBS reference semantics.

    Returns ``(final_store, outputs)`` where outputs is a list of
    per-packet frozensets.
    """
    if store is None:
        store = Store(ast.infer_state_defaults(policy))
    outputs = []
    for packet, port in trace:
        tagged = packet.modify("inport", port)
        store, out, _ = eval_policy(policy, store, tagged)
        outputs.append(out)
    return store, outputs
