"""Batched execution of the OBS verification mirror.

:func:`repro.workloads.replay.replay_obs` drives every trace packet
through ``eval`` on the one-big-switch — the reference the distributed
data plane is checked against.  On long traces that sequential mirror is
the slowest part of an equivalence test, yet it parallelizes exactly like
the data plane does: the same per-ingress state footprints that prove
data-plane shards disjoint (:func:`repro.dataplane.engine
.ingress_state_footprint`) prove that OBS evaluation of one ingress
group's packets can never influence another group's outputs or writes.

:class:`BatchedObsEngine` turns that into a mirror engine:

1. build the policy's xFDD and group the trace's ingress ports with the
   shard planner's union-find (a build failure or a single group falls
   back to the sequential mirror — always correct, never required);
2. split the trace into per-group batches (per-group order preserved)
   and evaluate each batch against a private copy of the store — in
   process-pool workers when ``processes=True`` (policies and stores are
   picklable), inline otherwise;
3. merge deterministically: outputs reassembled in global arrival order,
   each group's footprint variables written back into one final store.

The result is byte-identical to the sequential mirror's ``(store,
outputs)`` — the equivalence tests assert exactly that.

Mirror engines are pluggable the same way data-plane engines are:
:func:`register_obs_engine` adds a name to the registry
:func:`get_obs_engine` consults (the cluster mirror registers
``"cluster"``).  Select with ``replay_obs(...,
engine="batched"|"process"|"cluster")`` or pass an engine instance.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.dataplane.engine import (
    _LIVE_POOLS,
    group_ports_by_footprint,
    ingress_state_footprint,
)
from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.fields import FieldRegistry
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.util.registry import EngineRegistry
from repro.xfdd.build import build_xfdd


def _eval_batch(policy: ast.Policy, store: Store, batch) -> tuple:
    """Thread ``store`` through one batch of ``(index, packet, port)``.

    Returns ``(final_store, {index: output_set})`` — the exact loop the
    sequential mirror runs, reused for every engine so behaviour can
    never drift between them.
    """
    outputs: dict = {}
    for index, packet, port in batch:
        tagged = packet.modify("inport", port)
        store, out, _ = eval_policy(policy, store, tagged)
        outputs[index] = out
    return store, outputs


def _policy_fields(policy: ast.Policy) -> set:
    """Every packet field the policy mentions (for the xFDD registry)."""
    fields: set = set()
    stack = [policy]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Test, ast.Mod)):
            fields.add(node.field)
        elif isinstance(node, (ast.StateTest, ast.StateMod)):
            fields |= node.index.fields_used() | node.value.fields_used()
        elif isinstance(node, (ast.StateIncr, ast.StateDecr)):
            fields |= node.index.fields_used()
        elif isinstance(node, ast.Not):
            stack.append(node.pred)
        elif isinstance(node, (ast.And, ast.Or, ast.Parallel, ast.Seq)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.If):
            stack.extend((node.pred, node.then, node.orelse))
        elif isinstance(node, ast.Atomic):
            stack.append(node.body)
    return fields


def _extract_group_state(store: Store, variables) -> dict:
    """``{var: (default, table)}`` for the group's footprint variables."""
    state: dict = {}
    for var in sorted(variables):
        variable = store.variable(var)
        state[var] = (variable.default, variable.snapshot())
    return state


def _restrict_store(store: Store, variables) -> Store:
    """A store holding only the group's footprint variables.

    Sound because a group's packets can only *influence* (and only
    write) variables in its own footprint — reads of anything else are
    provably outcome-free, so they may see the default instead of
    another group's value.  Shipping the restricted store cuts the
    per-group pickle payload to the provably needed slice.
    """
    restricted = Store(store._defaults)
    for var in variables:
        source = store.variable(var)
        target = restricted.variable(var)
        target.default = source.default
        target._table = source.snapshot()
    return restricted


def _obs_worker(payload: tuple):
    """One group's batch, evaluated in a worker process (or inline)."""
    policy, store, variables, batch = payload
    final, outputs = _eval_batch(policy, store, batch)
    return _extract_group_state(final, variables), outputs


class SequentialObsEngine:
    """The reference mirror: one store threaded through the whole trace."""

    name = "sequential"

    def run(self, arrivals, policy: ast.Policy, store: Store) -> tuple:
        indexed = [(i, packet, port) for i, (packet, port) in enumerate(arrivals)]
        final, outputs = _eval_batch(policy, store, indexed)
        return final, [outputs[i] for i in range(len(indexed))]

    def __repr__(self):
        return "SequentialObsEngine()"


class BatchedObsEngine:
    """Per-ingress-group batched mirror with deterministic store merge.

    ``processes=True`` evaluates groups on a persistent process pool
    (created lazily, shut down by :meth:`close` or at interpreter exit);
    ``processes=False`` evaluates them inline — same batching, same
    merge, no IPC.  Group plans are cached per ``(policy, ports)`` so
    repeated mirrors of the same policy (the common equivalence-test
    shape) pay the xFDD build once.
    """

    name = "batched"

    def __init__(self, max_workers: int | None = None, processes: bool = True):
        self.max_workers = max_workers
        self.processes = processes
        self._pool = None
        self._plan_cache: dict = {}

    def run(self, arrivals, policy: ast.Policy, store: Store) -> tuple:
        arrivals = list(arrivals)
        ports = frozenset(port for _, port in arrivals)
        groups = self._plan(policy, ports)
        if groups is None or len(groups) <= 1:
            return SequentialObsEngine().run(arrivals, policy, store)

        group_of = {
            port: index
            for index, (members, _) in enumerate(groups)
            for port in members
        }
        batches: dict = {}
        for index, (packet, port) in enumerate(arrivals):
            batches.setdefault(group_of[port], []).append((index, packet, port))

        payloads = [
            (policy, _restrict_store(store, groups[group][1]),
             groups[group][1], batch)
            for group, batch in sorted(batches.items())
        ]
        results = self._map_payloads(payloads)

        # Deterministic merge: outputs in global arrival order; each
        # group's footprint variables written back into one final store.
        final = store.copy()
        outputs: dict = {}
        for state, group_outputs in results:
            outputs.update(group_outputs)
            for var, (default, table) in state.items():
                variable = final.variable(var)
                variable.default = default
                variable._table = dict(table)
        return final, [outputs[i] for i in range(len(arrivals))]

    def _map_payloads(self, payloads) -> list:
        """Evaluate the per-group payloads; returns ``(state, outputs)``
        per payload, in payload order.  The one hook subclasses (the
        cluster mirror) override — planning and merge stay shared, so
        behaviour can never drift between mirror backends."""
        if self.processes and len(payloads) > 1:
            pool = self._ensure_pool()
            return list(pool.map(_obs_worker, payloads))
        return [_obs_worker(payload) for payload in payloads]

    #: Plan-cache entries kept per engine (shared engines outlive any
    #: one policy; unbounded growth would pin every policy ever seen).
    _PLAN_CACHE_LIMIT = 8

    def _plan(self, policy: ast.Policy, ports: frozenset):
        """Disjoint port groups for ``policy`` (None = cannot batch)."""
        key = (policy, ports)
        if key in self._plan_cache:
            return self._plan_cache[key]
        try:
            registry = FieldRegistry(extra_fields=sorted(_policy_fields(policy)))
            xfdd = build_xfdd(policy, registry=registry)
            footprint = ingress_state_footprint(xfdd, sorted(ports))
            groups = group_ports_by_footprint(footprint, sorted(ports))
        except SnapError:
            # Races or un-compilable policies: eval still defines them
            # packet-by-packet, so mirror sequentially.
            groups = None
        self._plan_cache[key] = groups
        while len(self._plan_cache) > self._PLAN_CACHE_LIMIT:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        return groups

    def _ensure_pool(self):
        if self._pool is None:
            workers = self.max_workers or os.cpu_count() or 1
            self._pool = ProcessPoolExecutor(max_workers=workers)
            # Registered in the data-plane engine's live-pool list: one
            # atexit drain covers every pool this library opens.
            _LIVE_POOLS.append(self._pool)
        return self._pool

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            if pool in _LIVE_POOLS:
                _LIVE_POOLS.remove(pool)
            pool.shutdown(wait=True, cancel_futures=True)

    def __repr__(self):
        mode = "process" if self.processes else "inline"
        return f"BatchedObsEngine({mode}, max_workers={self.max_workers})"


# -- the mirror-engine registry -----------------------------------------------
#
# The same EngineRegistry as the data-plane engines: names map to
# factories (or lazy "module:attr" strings), and *stateful* names
# (engines owning pools or daemons) resolve to one shared instance per
# name, so ad-hoc ``replay_obs(..., engine="process")`` calls share a
# pool (and its plan cache) instead of leaking a fresh pool per call.
# Callers wanting a private pool pass an instance.

_OBS_REGISTRY = EngineRegistry("OBS mirror engine")


def register_obs_engine(name: str, factory, *, stateful: bool = False) -> None:
    """Register (or replace) a named OBS mirror engine."""
    _OBS_REGISTRY.register(name, factory, stateful=stateful)


def obs_engine_names() -> tuple:
    """The registered mirror-engine names ``replay_obs`` accepts."""
    return _OBS_REGISTRY.names()


def get_obs_engine(engine):
    """Resolve an OBS mirror engine name (instances pass through)."""
    return _OBS_REGISTRY.resolve(engine)


register_obs_engine("sequential", SequentialObsEngine)
register_obs_engine(
    "batched", lambda: BatchedObsEngine(processes=False), stateful=True
)
register_obs_engine(
    "process", lambda: BatchedObsEngine(processes=True), stateful=True
)
# Lazy: resolving the name imports repro.cluster only when first used.
register_obs_engine(
    "cluster", "repro.cluster.engine:ClusterObsEngine", stateful=True
)
