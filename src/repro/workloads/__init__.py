"""Synthetic traffic workloads and replay helpers."""

from repro.workloads.obs_engine import (
    BatchedObsEngine,
    SequentialObsEngine,
    get_obs_engine,
)
from repro.workloads.replay import ReplayStats, replay, replay_obs
from repro.workloads.traces import (
    Trace,
    background_traffic,
    benign_dns_usage,
    dns_amplification_attack,
    dns_tunnel_attack,
    ftp_session,
    mpeg_stream,
    syn_flood,
    tcp_session,
    udp_flood,
)

__all__ = [
    "BatchedObsEngine", "SequentialObsEngine", "get_obs_engine",
    "ReplayStats", "replay", "replay_obs",
    "Trace", "background_traffic", "benign_dns_usage",
    "dns_amplification_attack", "dns_tunnel_attack", "ftp_session",
    "mpeg_stream", "syn_flood", "tcp_session", "udp_flood",
]
