"""Synthetic packet traces for the Table 3 applications.

The paper evaluates compilation, not detection quality; a downstream user
of a stateful-policy compiler immediately wants to *drive traffic* through
the compiled network.  This module synthesizes the relevant behaviours —
DNS tunnels, SYN floods, FTP sessions, TCP handshakes, MPEG streams,
gravity-weighted background chatter — as ``(packet, ingress port)``
sequences ready for :meth:`repro.dataplane.network.Network.inject` or the
OBS reference semantics.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from repro.lang.packet import Packet, make_packet
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix
from repro.util.rng import make_rng


class Trace:
    """A sequence of (packet, ingress-port) arrivals with a label."""

    def __init__(self, name: str, arrivals):
        self.name = name
        self.arrivals = list(arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    def __len__(self):
        return len(self.arrivals)

    def __add__(self, other: "Trace") -> "Trace":
        return Trace(f"{self.name}+{other.name}", self.arrivals + other.arrivals)

    def interleaved_with(self, other: "Trace", seed=0) -> "Trace":
        """Random stable interleaving of two traces (per-trace order kept).

        Deterministic for a given seed.  Index pointers, not ``pop(0)``:
        the merge is O(n), which matters for the long replay traces the
        data-plane engine benchmarks interleave.
        """
        rng = make_rng(seed)
        a, b = self.arrivals, other.arrivals
        i = j = 0
        merged = []
        while i < len(a) or j < len(b):
            remaining_a = len(a) - i
            remaining_b = len(b) - j
            take_a = remaining_a > 0 and (
                remaining_b == 0
                or rng.random() < remaining_a / (remaining_a + remaining_b)
            )
            if take_a:
                merged.append(a[i])
                i += 1
            else:
                merged.append(b[j])
                j += 1
        return Trace(f"{self.name}|{other.name}", merged)

    def __repr__(self):
        return f"Trace({self.name!r}, {len(self.arrivals)} packets)"


def _host(prefix: IPPrefix, offset: int) -> int:
    return prefix.host(offset)


# ---------------------------------------------------------------------------
# DNS behaviours
# ---------------------------------------------------------------------------


def dns_tunnel_attack(
    client_ip: int,
    client_port: int,
    resolver_ip: int,
    resolver_port: int,
    num_responses: int = 5,
    seed=0,
) -> Trace:
    """A tunnel: many DNS responses whose resolved IPs are never used."""
    rng = make_rng(seed)
    arrivals = []
    for k in range(num_responses):
        covert = int(rng.integers(1, 2 ** 31))
        arrivals.append(
            (
                make_packet(
                    srcip=resolver_ip, dstip=client_ip, srcport=53,
                    dstport=int(rng.integers(1024, 65000)),
                    **{"dns.rdata": covert},
                ),
                resolver_port,
            )
        )
    return Trace("dns-tunnel-attack", arrivals)


def benign_dns_usage(
    client_ip: int,
    client_port: int,
    resolver_ip: int,
    resolver_port: int,
    servers,
    server_port: int,
    seed=0,
) -> Trace:
    """Lookup-then-connect pairs: every resolved address gets used."""
    rng = make_rng(seed)
    arrivals = []
    for server_ip in servers:
        arrivals.append(
            (
                make_packet(
                    srcip=resolver_ip, dstip=client_ip, srcport=53,
                    dstport=int(rng.integers(1024, 65000)),
                    **{"dns.rdata": server_ip},
                ),
                resolver_port,
            )
        )
        arrivals.append(
            (
                make_packet(
                    srcip=client_ip, dstip=server_ip,
                    srcport=int(rng.integers(1024, 65000)), dstport=80,
                ),
                client_port,
            )
        )
    return Trace("benign-dns-usage", arrivals)


def dns_amplification_attack(
    victim_ip: int, resolver_ip: int, resolver_port: int, count: int = 10, seed=0
) -> Trace:
    """Spoofed-query reflections: responses the victim never asked for."""
    rng = make_rng(seed)
    arrivals = [
        (
            make_packet(
                srcip=resolver_ip, dstip=victim_ip, srcport=53,
                dstport=int(rng.integers(1024, 65000)),
            ),
            resolver_port,
        )
        for _ in range(count)
    ]
    return Trace("dns-amplification", arrivals)


# ---------------------------------------------------------------------------
# TCP behaviours
# ---------------------------------------------------------------------------


def tcp_session(
    client_ip: int,
    server_ip: int,
    client_port: int,
    server_port: int,
    sport: int = 40000,
    dport: int = 80,
    data_packets: int = 3,
    teardown: bool = True,
) -> Trace:
    """A full TCP session: handshake, data, orderly teardown."""
    fwd = dict(srcip=client_ip, dstip=server_ip, srcport=sport, dstport=dport,
               proto=6)
    rev = dict(srcip=server_ip, dstip=client_ip, srcport=dport, dstport=sport,
               proto=6)
    arrivals = [
        (make_packet(**fwd, **{"tcp.flags": Symbol("SYN")}), client_port),
        (make_packet(**rev, **{"tcp.flags": Symbol("SYN-ACK")}), server_port),
        (make_packet(**fwd, **{"tcp.flags": Symbol("ACK")}), client_port),
    ]
    for k in range(data_packets):
        side = fwd if k % 2 == 0 else rev
        port = client_port if k % 2 == 0 else server_port
        arrivals.append(
            (make_packet(**side, **{"tcp.flags": Symbol("PSH")}), port)
        )
    if teardown:
        arrivals.extend(
            [
                (make_packet(**fwd, **{"tcp.flags": Symbol("FIN")}), client_port),
                (make_packet(**rev, **{"tcp.flags": Symbol("FIN-ACK")}), server_port),
                (make_packet(**fwd, **{"tcp.flags": Symbol("ACK")}), client_port),
            ]
        )
    return Trace("tcp-session", arrivals)


def syn_flood(
    attacker_ip: int,
    attacker_port: int,
    victim_ip: int,
    count: int = 50,
    seed=0,
) -> Trace:
    """SYNs without ACKs, cycling source ports."""
    rng = make_rng(seed)
    arrivals = [
        (
            make_packet(
                srcip=attacker_ip, dstip=victim_ip,
                srcport=int(rng.integers(1024, 65000)), dstport=80, proto=6,
                **{"tcp.flags": Symbol("SYN")},
            ),
            attacker_port,
        )
        for _ in range(count)
    ]
    return Trace("syn-flood", arrivals)


# ---------------------------------------------------------------------------
# Other application behaviours
# ---------------------------------------------------------------------------


def ftp_session(
    client_ip: int,
    server_ip: int,
    client_port: int,
    server_port: int,
    data_port: int = 5050,
    data_packets: int = 3,
) -> Trace:
    """Standard-mode FTP: PORT announcement then a server data burst."""
    arrivals = [
        (
            make_packet(
                srcip=client_ip, dstip=server_ip, srcport=41000, dstport=21,
                **{"ftp.port": data_port},
            ),
            client_port,
        )
    ]
    for _ in range(data_packets):
        arrivals.append(
            (
                make_packet(
                    srcip=server_ip, dstip=client_ip, srcport=20,
                    dstport=data_port, **{"ftp.port": data_port},
                ),
                server_port,
            )
        )
    return Trace("ftp-session", arrivals)


def mpeg_stream(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    gop: int = 14,
    groups: int = 3,
    lose_iframe_group: int | None = None,
) -> Trace:
    """I-frame then ``gop`` dependent B-frames per group; optionally drop
    the I-frame of one group (simulating upstream loss)."""
    flow = dict(srcip=src_ip, dstip=dst_ip, srcport=7000, dstport=7001)
    arrivals = []
    for g in range(groups):
        if g != lose_iframe_group:
            arrivals.append(
                (make_packet(**flow, **{"mpeg.frame-type": Symbol("Iframe")}),
                 src_port)
            )
        for _ in range(gop):
            arrivals.append(
                (make_packet(**flow, **{"mpeg.frame-type": Symbol("Bframe")}),
                 src_port)
            )
    return Trace("mpeg-stream", arrivals)


def udp_flood(
    attacker_ip: int, attacker_port: int, victim_ip: int, count: int = 30, seed=0
) -> Trace:
    rng = make_rng(seed)
    arrivals = [
        (
            make_packet(
                srcip=attacker_ip, dstip=victim_ip, proto=Symbol("UDP"),
                srcport=int(rng.integers(1024, 65000)), dstport=53,
            ),
            attacker_port,
        )
        for _ in range(count)
    ]
    return Trace("udp-flood", arrivals)


def background_traffic(
    subnets: dict,
    count: int = 100,
    seed=0,
) -> Trace:
    """Gravity-weighted random transit chatter between all subnets.

    ``subnets`` maps OBS port -> :class:`IPPrefix`.
    """
    rng = make_rng(seed)
    ports = sorted(subnets)
    weights = rng.exponential(1.0, len(ports))
    weights = weights / weights.sum()
    arrivals = []
    for _ in range(count):
        src_port, dst_port = rng.choice(ports, size=2, p=weights, replace=True)
        src_port, dst_port = int(src_port), int(dst_port)
        packet = make_packet(
            srcip=_host(subnets[src_port], int(rng.integers(1, 100))),
            dstip=_host(subnets[dst_port], int(rng.integers(1, 100))),
            srcport=int(rng.integers(1024, 65000)),
            dstport=int(rng.choice([80, 443, 22, 8080])),
            proto=6,
        )
        arrivals.append((packet, src_port))
    return Trace("background", arrivals)
